(** Per-chunk access statistics with exponentially-decayed heat.

    One table per database instance, indexed by the dense chunk id.
    The hot path (one record per get/put/scan) is a lock-free array
    load plus atomic counter increments; only cell installation and the
    per-cell heat accumulator take (tiny, uncontended) mutexes.

    {b Heat.} Each access adds 1 to the chunk's heat after decaying the
    stored value by [2^(-dt / half_life_ns)], where [dt] is the time
    since the previous touch. Reading decays to the reader's [now], so
    scores are comparable across chunks regardless of when each was
    last touched: a chunk receiving a steady [r] accesses per half-life
    converges to heat ~[r / ln 2], and goes to 0 once traffic stops.
    Splits and merges transfer heat along the key range ({!transfer}).

    All functions take the current monotonic time explicitly
    ([Obs.now_ns] in production), which keeps decay deterministic under
    test. *)

type t

type component =
  | Munk  (** get served from the resident munk *)
  | Row  (** get served from the row cache *)
  | Funk  (** get went to the funk (log or SSTable), hit or miss *)

type stat = {
  st_gets : int;
  st_puts : int;
  st_scans : int;  (** chunk visits by scans, not scan calls *)
  st_munk_hits : int;
  st_row_hits : int;
  st_funk_reads : int;
  st_rebalances : int;
  st_splits : int;
  st_heat : float;  (** decayed to the snapshot's [now] *)
}

val zero : stat

val create : half_life_ns:int -> unit -> t

val record_get : t -> int -> component -> now:int -> unit
val record_put : t -> int -> now:int -> unit
val record_scan : t -> int -> now:int -> unit
val record_rebalance : t -> int -> now:int -> unit
val record_split : t -> int -> now:int -> unit

val transfer : t -> now:int -> old_ids:int list -> new_ids:int list -> unit
(** Move the decayed heat of [old_ids] (summed, then split evenly) onto
    [new_ids], zeroing the old cells' heat. Op counters do not move. *)

val heat : t -> int -> now:int -> float
(** Decayed heat of one chunk id (0 if never seen). *)

val stat : t -> int -> now:int -> stat option
val stats : t -> now:int -> (int * stat) list
(** Every chunk id ever seen, ascending. *)

val residue : t -> now:int -> string list
(** Names ([chunk.<id>.<field>]) of all non-zero fields — empty right
    after {!reset}; used as a regression guard on reset paths. *)

val reset : t -> now:int -> unit
