open Evendb_util


type component = Munk_cache | Row_cache | Funk_log | Sstable | Missing

let component_name = function
  | Munk_cache -> "munk"
  | Row_cache -> "row-cache"
  | Funk_log -> "log"
  | Sstable -> "sstable"
  | Missing -> "missing"

let all = [ Munk_cache; Row_cache; Funk_log; Sstable; Missing ]

let index = function
  | Munk_cache -> 0
  | Row_cache -> 1
  | Funk_log -> 2
  | Sstable -> 3
  | Missing -> 4

type t = {
  detailed : bool;
  counts : int Atomic.t array;
  hist_mutex : Mutex.t;
  hists : Histogram.t array;
}

let create ~detailed =
  {
    detailed;
    counts = Array.init 5 (fun _ -> Atomic.make 0);
    hist_mutex = Mutex.create ();
    hists = Array.init 5 (fun _ -> Histogram.create ());
  }

let record t comp nanos =
  let i = index comp in
  ignore (Atomic.fetch_and_add t.counts.(i) 1);
  if t.detailed then begin
    Mutex.lock t.hist_mutex;
    Histogram.record t.hists.(i) nanos;
    Mutex.unlock t.hist_mutex
  end

type latency = {
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
}

type summary = {
  total : int;
  fractions : (component * float) list;
  latencies : (component * latency) list;
}

let summarize t =
  let counts = List.map (fun c -> (c, Atomic.get t.counts.(index c))) all in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
  let fractions =
    List.map
      (fun (c, n) -> (c, if total = 0 then 0.0 else float_of_int n /. float_of_int total))
      counts
  in
  let latencies =
    Mutex.lock t.hist_mutex;
    let r =
      List.map
        (fun c ->
          let h = t.hists.(index c) in
          match Histogram.percentiles h [ 50.0; 95.0; 99.0 ] with
          | [ p50; p95; p99 ] -> (c, { mean = Histogram.mean h; p50; p95; p99 })
          | _ -> assert false)
        all
    in
    Mutex.unlock t.hist_mutex;
    r
  in
  { total; fractions; latencies }

let reset t =
  Array.iter (fun c -> Atomic.set c 0) t.counts;
  Mutex.lock t.hist_mutex;
  Array.iter Histogram.reset t.hists;
  Mutex.unlock t.hist_mutex
