type op =
  | Idle
  | Put of { key : string; version : int option }
  | Scan of { low : string; high : string option; version : int option }

type t = { slots : op Atomic.t array }

type slot = int

let create ?(slots = 128) () =
  if slots < 1 then invalid_arg "Pending_ops.create: slots < 1";
  { slots = Array.init slots (fun _ -> Atomic.make Idle) }

(* Per-domain rotating hint to spread slot acquisition. *)
let hint_key = Domain.DLS.new_key (fun () -> ref 0)

let acquire t op =
  let n = Array.length t.slots in
  let hint = Domain.DLS.get hint_key in
  let rec try_from i attempts =
    if attempts >= n then begin
      (* All busy: yield and retry. *)
      Domain.cpu_relax ();
      try_from i 0
    end
    else begin
      let idx = (i + attempts) mod n in
      let slot = t.slots.(idx) in
      let free = match Atomic.get slot with Idle -> true | Put _ | Scan _ -> false in
      if free && Atomic.compare_and_set slot Idle op then begin
        hint := idx + 1;
        idx
      end
      else try_from i (attempts + 1)
    end
  in
  try_from !hint 0

let begin_put t ~key = acquire t (Put { key; version = None })

let publish_put_version t slot ~key ~version =
  Atomic.set t.slots.(slot) (Put { key; version = Some version })

let begin_scan t ~low ~high = acquire t (Scan { low; high; version = None })

let publish_scan_version t slot ~low ~high ~version =
  Atomic.set t.slots.(slot) (Scan { low; high; version = Some version })

let finish t slot = Atomic.set t.slots.(slot) Idle

(* [high = None] is +infinity. *)
let key_in_range key ~low ~high =
  String.compare low key <= 0
  && match high with None -> true | Some h -> String.compare key h <= 0

let ranges_overlap ~low1 ~high1 ~low2 ~high2 =
  (match high2 with None -> true | Some h2 -> String.compare low1 h2 <= 0)
  && match high1 with None -> true | Some h1 -> String.compare low2 h1 <= 0

let wait_pending_puts t ~low ~high ~upto =
  Array.iter
    (fun slot ->
      let rec wait () =
        match Atomic.get slot with
        | Put { key; version }
          when key_in_range key ~low ~high
               && (match version with None -> true | Some v -> v <= upto) ->
          (* The put may still insert a value this snapshot must see. *)
          Domain.cpu_relax ();
          wait ()
        | _ -> ()
      in
      wait ())
    t.slots

let min_scan_version t ~low ~high ~default =
  let result = ref default in
  Array.iter
    (fun slot ->
      let rec inspect () =
        match Atomic.get slot with
        | Scan { low = slow; high = shigh; version }
          when ranges_overlap ~low1:slow ~high1:shigh ~low2:low ~high2:high -> (
          match version with
          | None ->
            (* Intent published but version pending: wait (§3.4). *)
            Domain.cpu_relax ();
            inspect ()
          | Some v -> if v < !result then result := v)
        | _ -> ()
      in
      inspect ())
    t.slots;
  !result

let exists_scan_between t ~key ~old_version ~new_version =
  let found = ref false in
  Array.iter
    (fun slot ->
      if not !found then
        match Atomic.get slot with
        | Scan { low; high; version } when key_in_range key ~low ~high -> (
          match version with
          | None -> found := true (* conservative: version unknown *)
          | Some s -> if old_version <= s && s < new_version then found := true)
        | _ -> ())
    t.slots;
  !found
