(** The recovery table (§3.5, Table 1): epoch → last checkpointed
    per-epoch sequence number.

    After a crash, reads from funks must ignore records of earlier
    epochs whose sequence exceeds that epoch's last completed
    checkpoint — they were written but never covered by a checkpoint,
    so surfacing them could expose a non-prefix state. Records of the
    current epoch are always visible (they are in memory / covered by
    normal operation). *)

open Evendb_storage

type t

val empty : t

val add : t -> epoch:int -> last_seq:int -> t
(** Record that [epoch] checkpointed up to [last_seq] ([-1] when the
    epoch never completed a checkpoint). *)

val last_seq : t -> epoch:int -> int option

val is_visible : t -> current_epoch:int -> int -> bool
(** [is_visible t ~current_epoch version]: current-epoch versions are
    always visible; older epochs only up to their checkpoint. Epochs
    missing from the table are fully invisible. *)

val max_epoch : t -> int
(** Largest epoch present; -1 when empty. *)

val store : ?name:string -> Env.t -> t -> unit
(** Atomically persist (write temp + fsync + rename). [?name]
    overrides the location (default {!file_name}) for snapshot-pinned
    copies. *)

val load : ?name:string -> Env.t -> t
(** The empty table when the file does not exist. Raises
    [Invalid_argument] on corruption. *)

val file_name : string
