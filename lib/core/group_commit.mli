(** Group commit: coalesce concurrent sync puts' log appends into
    shared fsyncs.

    Protocol: after its log append, a sync put joins the forming batch;
    the first member with no active leader becomes leader and publishes
    a target size (previous batch size or the in-flight writer count at
    promotion, whichever is larger, capped at [max_batch]). The joiner
    that fills the target seals and commits the batch on the spot, so
    in steady state the batch closes the instant the cohort is in — the
    leader's own [max_wait_ns]-bounded wait is only the backstop for
    writers that stall before joining. A solo writer (target 1) commits
    immediately: it never waits for company that isn't coming.

    A sealed batch's fsyncs — one per distinct funk log it touches —
    are fanned out cooperatively: every blocked member claims a pending
    funk (its own first) and runs that fsync itself, so a batch
    spanning [k] logs issues its [k] fsyncs concurrently and the
    journal merges them into about one device commit. Acks are
    per-funk: a member unblocks as soon as a covering fsync of {e its}
    funk's log succeeds, overlapping its next operation with the rest
    of the batch. An ack therefore always means a successful covering
    fsync — acked <=> durable at every batch boundary — and an fsync
    failure propagates to exactly the members whose appends that fsync
    was covering. [max_batch = 1] degenerates to per-op fsync,
    serialized per committer. *)

type t

val create :
  max_batch:int -> max_wait_ns:int -> Evendb_obs.Obs.t -> t
(** Registers [commit.batches], [commit.fsyncs], [commit.fsyncs_saved]
    counters and the [commit.batch_size] (members per batch),
    [commit.fsync] (per-fsync latency) and [commit.reform] (gap between
    one batch finishing and the next sealing) timers in the registry. *)

val track : t -> (unit -> 'a) -> 'a
(** Run a mutation counted as in flight for batch-target sizing. The
    write path brackets each sync put/delete with [track] so a newly
    promoted leader knows how many writers are mid-append and sizes the
    batch target to the cohort actually underway. *)

val sync : t -> Funk.t -> unit
(** Make the calling put's (already appended) log record durable,
    sharing the fsync with any concurrent batch members. Blocks until a
    covering fsync of [funk]'s log succeeded; raises that fsync's error
    (e.g. {!Evendb_storage.Env.Io_error}) if it failed. Waits are
    charged to the [Commit_wait] attribution cause; fsyncs run by this
    member (its own or ones it helped with) to [Fsync]. *)
