open Evendb_util
open Evendb_storage
open Evendb_bloom
open Evendb_cache
open Evendb_munk
open Evendb_sstable
open Evendb_log
open Evendb_obs

module K = Kv_iter

(* Background maintenance (the paper's dedicated threads): puts enqueue
   chunks whose thresholds tripped; a maintainer domain drains the
   queue. *)
type maintainer = {
  m_mutex : Mutex.t;
  m_cond : Condition.t;
  m_queue : (int, Chunk.t) Hashtbl.t; (* dedup by chunk id *)
  mutable m_stop : bool;
  mutable m_domain : unit Domain.t option;
}

module Tel = Evendb_telemetry

(* Continuous telemetry attached to a live instance: the windowed
   sampler, its optional on-disk journal, and the HTTP endpoint. All
   opt-in ([start_sampler]/[serve_telemetry]) — tests open hundreds of
   stores and must not pay a domain each. *)
type telemetry = {
  tel_sampler : Tel.Sampler.t;
  tel_journal : Tel.Journal.t option;
  mutable tel_http : Tel.Http.t option;
}

type t = {
  env : Env.t;
  cfg : Config.t;
  head : Chunk.t Atomic.t;
  index : Chunk_index.t Atomic.t;
  gv : int Atomic.t; (* packed current version; puts read, scans F&I *)
  po : Pending_ops.t;
  row_cache : Row_cache.t;
  lfu : Lfu.t;
  rt : Recovery_table.t;
  epoch : int;
  last_checkpoint : int Atomic.t; (* packed; -1 before the first *)
  next_funk_id : int Atomic.t;
  next_chunk_id : int Atomic.t;
  live_funks : (int, unit) Hashtbl.t; (* guarded by [structural] *)
  structural : Mutex.t; (* chunk list, index, manifest; leaf lock *)
  checkpoint_mutex : Mutex.t;
  rstats : Read_stats.t;
  cstats : Chunk_stats.t;
  topk : Topk.t; (* hot key prefixes, fed from gets and puts *)
  recorder : Obs.Recorder.t;
  logical_written : int Atomic.t;
  put_count : int Atomic.t;
  closed : bool Atomic.t;
  fenced : bool Atomic.t; (* failover: a fenced primary rejects writes *)
  commit_hook : (K.entry -> unit) option Atomic.t;
      (* called once per put/delete after the entry is acked (and, under
         Sync, durable) — the replication change-stream's tap *)
  maint : maintainer option;
  committer : Group_commit.t option; (* Some iff persistence = Sync *)
  (* Observability: one registry per instance; handles cached here so
     the hot paths bump without a hashtable lookup. *)
  obs : Obs.t;
  attr : Attr.t; (* per-op tail-latency cause attribution *)
  tm_put : Obs.Timer.t;
  tm_get : Obs.Timer.t;
  tm_delete : Obs.Timer.t;
  tm_scan : Obs.Timer.t;
  ctr_log_appends : Obs.Counter.t;
  ctr_funk_flushes : Obs.Counter.t;
  ctr_funk_merges : Obs.Counter.t;
  ctr_io_errors : Obs.Counter.t; (* maintenance/checkpoint I/O failures absorbed *)
  ctr_view_builds : Obs.Counter.t;
  ctr_view_loads : Obs.Counter.t;
  ctr_view_scans : Obs.Counter.t;
  ctr_view_fallbacks : Obs.Counter.t;
  opened_at_ns : int;
  tel_mutex : Mutex.t; (* guards [telemetry]; leaf lock *)
  mutable telemetry : telemetry option;
}

exception Fenced

let env t = t.env
let config t = t.cfg
let obs t = t.obs
let attr t = t.attr

let metrics_dump t = function
  | `Json -> Obs.to_json t.obs
  | `Prometheus -> Obs.to_prometheus t.obs
let current_version t = Atomic.get t.gv
let current_epoch t = t.epoch
let logical_bytes_written t = Atomic.get t.logical_written
let read_stats t = Read_stats.summarize t.rstats

let visible db version = Recovery_table.is_visible db.rt ~current_epoch:db.epoch version

(* Persistence floor: versions at or below it must survive every
   compaction, or a crash could recover to a non-prefix state (§3.5). *)
let persist_floor db =
  match db.cfg.persistence with
  | Config.Sync -> Atomic.get db.gv
  | Config.Async -> Atomic.get db.last_checkpoint

let fresh_funk_id db = Atomic.fetch_and_add db.next_funk_id 1
let fresh_chunk_id db = Atomic.fetch_and_add db.next_chunk_id 1

let chunk_range c = (Chunk.min_key c, Option.map Chunk.min_key (Chunk.next c))

(* Versions a compaction of chunk [c] must retain: the minimum of
   overlapping scans' snapshots, the current GV, and the persistence
   floor (§3.4 + §3.5). *)
let compaction_floor db c =
  let low, high_excl = chunk_range c in
  let high =
    (* PO scan ranges are inclusive; the chunk upper bound is
       exclusive, which only makes the overlap test conservative. *)
    high_excl
  in
  let gv_now = Atomic.get db.gv in
  let scans = Pending_ops.min_scan_version db.po ~low ~high ~default:gv_now in
  let pf = persist_floor db in
  (* Before the first checkpoint nothing is durable, so there is no
     persistence consumer: recovery comes back empty either way. *)
  if pf < 0 then min scans gv_now else min scans (min gv_now pf)

(* Manifest bookkeeping — caller must NOT hold [structural]. *)
let manifest_update db ~add ~remove =
  Mutex.lock db.structural;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock db.structural)
    (fun () ->
      List.iter (fun id -> Hashtbl.replace db.live_funks id ()) add;
      List.iter (fun id -> Hashtbl.remove db.live_funks id) remove;
      let live = Hashtbl.fold (fun id () acc -> id :: acc) db.live_funks [] in
      (* [store] writes the complete live set every time, so if it fails
         here the in-memory table stays authoritative and the next
         successful store repairs the on-disk manifest in full. *)
      Manifest.store db.env { next_id = Atomic.get db.next_funk_id; live })

(* Two-phase funk publication. Phase 1 records the replacement funks in
   the manifest while the replaced funks' files are still on disk;
   phase 2 drops the replaced ids and only then retires them (deleting
   their files once unpinned). A crash between the phases leaves both
   generations manifest-live with intact files — recovery keeps the
   newer (higher-id) funk of each min-key and sweeps the other. The
   reverse order would let a crash strand a manifest-live id whose
   files are already deleted, which recovery could not tell apart from
   data loss. If phase 2's store fails, the old funks are deliberately
   NOT retired: the on-disk manifest may still reference them, so their
   files must survive until a later store (or recovery) supersedes it. *)
let publish_funks db ~add ~disown =
  manifest_update db ~add ~remove:[];
  let retired = List.filter Funk.disown disown in
  match retired with
  | [] -> ()
  | fs ->
    manifest_update db ~add:[] ~remove:(List.map Funk.id fs);
    List.iter Funk.retire fs

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

let walk_forward c key =
  let cur = ref c in
  let continue = ref true in
  while !continue do
    match Chunk.next !cur with
    | Some n when String.compare (Chunk.min_key n) key <= 0 -> cur := n
    | _ -> continue := false
  done;
  !cur

(* Reads may land on a retired chunk via a stale index snapshot; that
   is safe (it is immutable and holds the same content as its
   replacements, §3.4), but its funk may already be deleted, in which
   case [Funk.with_pin] raises [Funk.Stale] and the caller re-resolves
   through the rebuilt index. *)
let lookup_read db key = walk_forward (Chunk_index.find (Atomic.get db.index) key) key

let rec lookup_put db key =
  let c = lookup_read db key in
  if Chunk.retired c then begin
    Domain.cpu_relax ();
    lookup_put db key
  end
  else c

(* ------------------------------------------------------------------ *)
(* Bloom filters of munk-less chunks                                   *)

let build_bloom db funk =
  let bloom =
    Partitioned_bloom.create ~bits_per_key:db.cfg.bloom_bits_per_key
      ~segment_bytes:(max 1024 (db.cfg.funk_log_limit_no_munk / db.cfg.bloom_split_factor))
      ~expected_keys_per_segment:(max 64 (db.cfg.funk_log_limit_no_munk / db.cfg.bloom_split_factor / 64))
      ()
  in
  List.iter
    (fun (off, key) -> Partitioned_bloom.add bloom ~key ~log_offset:off)
    (Funk.log_offsets_for_bloom funk ~visible:(visible db));
  bloom

(* Rebuild a funk's sorted view. Views are derived data, so storage
   failures are absorbed: the view simply stays missing (or stale) and
   scans keep using the merge path. Callers hold the funk exclusively
   (same discipline as bloom rebuilds). *)
let rebuild_view db funk =
  if db.cfg.sorted_view_enabled then
    Attr.timed Attr.View_build (fun () ->
        try
          Funk.build_view funk;
          Obs.Counter.incr db.ctr_view_builds
        with Env.Io_error _ -> Obs.Counter.incr db.ctr_io_errors)

(* Lazily create the bloom filter of a munk-less chunk (recovery leaves
   them absent). Takes the chunk's rebalance lock exclusively so no put
   can append a record the new filter would miss. *)
let ensure_bloom db c =
  if Chunk.munk c = None && Chunk.bloom_segments c "" = None then begin
    let lock = Chunk.rebalance_lock c in
    if Rwlock.try_lock_exclusive lock then
      Fun.protect
        ~finally:(fun () -> Rwlock.unlock_exclusive lock)
        (fun () ->
          if (not (Chunk.retired c)) && Chunk.munk c = None && Chunk.bloom_segments c "" = None
          then
            Funk.with_pin
              ~current:(fun () -> Chunk.funk c)
              (fun funk -> Chunk.set_bloom c (Some (build_bloom db funk))))
  end

(* ------------------------------------------------------------------ *)
(* Munk loading and eviction (the munk cache)                          *)

let row_cache_purge db c =
  let low, high_excl = chunk_range c in
  (* invalidate_range is inclusive; purging up to (and including) the
     next chunk's min key is harmless. *)
  Row_cache.invalidate_range db.row_cache ~low ~high:high_excl

(* A funk shared between split siblings holds both ranges' data until
   each sibling flushes its own; any read of a funk's full content on
   behalf of a chunk must therefore be clipped to the chunk's range. *)
let chunk_entries db c funk =
  let low, high_excl = chunk_range c in
  K.filter
    (fun (e : K.entry) ->
      String.compare low e.key <= 0
      && match high_excl with None -> true | Some h -> String.compare e.key h < 0)
    (Funk.all_entries funk ~visible:(visible db))

let load_munk db c =
  let lock = Chunk.rebalance_lock c in
  Rwlock.lock_exclusive lock;
  Fun.protect
    ~finally:(fun () -> Rwlock.unlock_exclusive lock)
    (fun () ->
      if (not (Chunk.retired c)) && Chunk.munk c = None then begin
        Funk.with_pin
          ~current:(fun () -> Chunk.funk c)
          (fun funk ->
            let floor = compaction_floor db c in
            let entries = K.compact ~min_retained_version:floor (chunk_entries db c funk) in
            Chunk.set_munk c (Some (Munk.of_iter entries)));
        Chunk.set_bloom c None;
        row_cache_purge db c;
        true
      end
      else false)

(* Flush the munk into a fresh funk (new SSTable from the compacted
   munk, empty log). Caller holds the chunk's lock exclusively. The old
   funk may still be shared with a sibling chunk mid-split; ownership
   accounting ([Funk.disown]) retires it only when the last owner lets
   go. *)
let flush_munk_locked db c munk =
  Obs.Trace.with_span (Obs.trace db.obs) ~name:"funk_flush" (fun sp ->
      let floor = compaction_floor db c in
      let compacted = Munk.rebalance munk ~min_retained_version:(Some floor) in
      Obs.Trace.add_attr sp "bytes" (Munk.byte_size compacted);
      Obs.Trace.add_attr sp "entries" (Munk.entry_count compacted);
      let old_funk = Chunk.funk c in
      let id = fresh_funk_id db in
      let funk' =
        Funk.create_from_iter db.env ~block_bytes:db.cfg.sstable_block_bytes ~id
          ~min_key:(Chunk.min_key c) (Munk.iter compacted)
      in
      Chunk.set_munk c (Some compacted);
      Chunk.set_funk c funk';
      publish_funks db ~add:[ id ] ~disown:[ old_funk ];
      Obs.Counter.incr db.ctr_funk_flushes;
      compacted)

let evict_munk_chunk db c =
  let lock = Chunk.rebalance_lock c in
  Rwlock.lock_exclusive lock;
  Fun.protect
    ~finally:(fun () -> Rwlock.unlock_exclusive lock)
    (fun () ->
      match Chunk.munk c with
      | None -> false
      | Some munk when not (Chunk.retired c) ->
        (* If the log has outgrown the munk-less limit, flush first so
           the now-cold chunk doesn't immediately need a disk merge. *)
        if Funk.log_size (Chunk.funk c) > db.cfg.funk_log_limit_no_munk then
          ignore (flush_munk_locked db c munk);
        Chunk.set_munk c None;
        (* Bloom filters are re-created on munk eviction (§2.2); the
           sorted view alongside them — the chunk is now cold and its
           scans shift to the funk. *)
        Funk.with_pin
          ~current:(fun () -> Chunk.funk c)
          (fun funk ->
            Chunk.set_bloom c (Some (build_bloom db funk));
            rebuild_view db funk);
        Lfu.drop_cached db.lfu (Chunk.id c);
        true
      | Some _ -> false)

let chunk_by_id db id =
  List.find_opt (fun c -> Chunk.id c = id) (Chunk_index.chunks (Atomic.get db.index))

(* Access-driven munk admission, sampled to keep the LFU off the hot
   path. *)
let access_tick = Domain.DLS.new_key (fun () -> ref 0)

let note_access db c =
  let tick = Domain.DLS.get access_tick in
  incr tick;
  if !tick land 7 = 0 then begin
    try
      (match Lfu.on_access db.lfu (Chunk.id c) with
      | Lfu.Already_cached | Lfu.Skip -> ()
      | Lfu.Evict_other vid -> (
        match chunk_by_id db vid with
        | Some victim -> ignore (Attr.timed Attr.Rebalance (fun () -> evict_munk_chunk db victim))
        | None -> Lfu.remove db.lfu vid)
      | Lfu.Admit evictee ->
        (match evictee with
        | Some vid -> (
          match chunk_by_id db vid with
          | Some victim -> ignore (Attr.timed Attr.Rebalance (fun () -> evict_munk_chunk db victim))
          | None -> Lfu.remove db.lfu vid)
        | None -> ());
        if not (Attr.timed Attr.Disk_read (fun () -> load_munk db c)) then
          (* Retired or already loaded elsewhere; keep LFU consistent. *)
          if Chunk.munk c = None then Lfu.drop_cached db.lfu (Chunk.id c))
    with Env.Corruption _ ->
      (* Admission is an optimisation; a corrupt funk must not take the
         read path down with it. The get itself degrades separately. *)
      ()
  end

(* ------------------------------------------------------------------ *)
(* Get                                                                 *)

let now_ns = Obs.now_ns

let entry_to_value (e : K.entry) = e.value

(* Hot-prefix sketch key: the leading [hot_prefix_len] bytes. *)
let prefix_of db key =
  let n = db.cfg.hot_prefix_len in
  if String.length key <= n then key else String.sub key 0 n

let rec get_resolved db key =
  let detailed = db.cfg.collect_read_stats in
  let t0 = if detailed then now_ns () else 0 in
  let c = lookup_read db key in
  let record comp =
    Read_stats.record db.rstats comp (if detailed then now_ns () - t0 else 0);
    let cc =
      match comp with
      | Read_stats.Munk_cache -> Chunk_stats.Munk
      | Read_stats.Row_cache -> Chunk_stats.Row
      | Read_stats.Funk_log | Read_stats.Sstable | Read_stats.Missing -> Chunk_stats.Funk
    in
    Chunk_stats.record_get db.cstats (Chunk.id c) cc ~now:(now_ns ())
  in
  note_access db c;
  match Chunk.munk c with
  | Some munk ->
    let result =
      match Munk.find_latest munk key with
      | Some e -> entry_to_value e
      | None -> None
    in
    record Read_stats.Munk_cache;
    result
  | None -> (
    match Row_cache.find db.row_cache key with
    | Some v ->
      record Read_stats.Row_cache;
      Some v
    | None ->
      (* Munk miss, row-cache miss: the rest of this get is served from
         the funk (bloom build + log probe + SSTable read) — the
         disk-read stall the munk cache exists to avoid. The recursive
         retry under [Stale] stays inside the section (nested [timed]
         is a no-op), so its cost is charged to this op too. *)
      Attr.timed Attr.Disk_read (fun () ->
      ensure_bloom db c;
      try
        Funk.with_pin
          ~current:(fun () -> Chunk.funk c)
          (fun funk ->
          let segments = Chunk.bloom_segments c key in
          match
            Funk.get_from_log funk ?segments ~visible:(visible db) ~max_version:max_int key
          with
          | Some ({ value = Some v; version; counter; _ } : K.entry) ->
            Row_cache.insert db.row_cache key v ~version ~counter;
            record Read_stats.Funk_log;
            Some v
          | Some { value = None; _ } ->
            record Read_stats.Funk_log;
            None
          | None -> (
            match
              try `Sst (Funk.get_from_sst funk ~visible:(visible db) ~max_version:max_int key)
              with Env.Corruption _ as exn ->
                (* Corrupt SSTable block: degrade to a full-log scan (a
                   superset of the bloom segments checked above). A key
                   that only lives in the corrupt table stays
                   unreadable until [fsck --repair], but the process
                   survives and every log-resident key stays served. *)
                `Degraded
                  ( Funk.get_from_log funk ~visible:(visible db) ~max_version:max_int key,
                    exn )
            with
            | `Sst (Some ({ value = Some v; version; counter; _ } : K.entry)) ->
              Row_cache.insert db.row_cache key v ~version ~counter;
              record Read_stats.Sstable;
              Some v
            | `Sst (Some { value = None; _ }) ->
              record Read_stats.Sstable;
              None
            | `Sst None ->
              record Read_stats.Missing;
              None
            | `Degraded (Some ({ value; _ } : K.entry), _) ->
              record Read_stats.Funk_log;
              value
            | `Degraded (None, exn) -> raise exn))
      with Funk.Stale -> get_resolved db key))

let get db key =
  Topk.observe db.topk (prefix_of db key);
  Attr.with_op db.attr Attr.Get db.tm_get (fun () -> get_resolved db key)

(* ------------------------------------------------------------------ *)
(* Rebalance and splits                                                *)

let find_predecessor db c =
  let rec walk cur = match Chunk.next cur with
    | Some n when n == c -> Some cur
    | Some n -> walk n
    | None -> None
  in
  let head = Atomic.get db.head in
  if head == c then None else walk head

(* Splice [replacements] (linked among themselves) in place of [c].
   Caller holds c's rebalance lock exclusively. *)
let splice_chunks db c ~first ~last =
  Mutex.lock db.structural;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock db.structural)
    (fun () ->
      Chunk.set_next last (Chunk.next c);
      (match find_predecessor db c with
      | None -> Atomic.set db.head first
      | Some pred -> Chunk.set_next pred (Some first));
      Atomic.set db.index (Chunk_index.of_first_chunk (Atomic.get db.head)));
  Chunk.retire c

(* Split a chunk whose compacted munk exceeds the chunk size limit
   (§3.4). Caller holds c's rebalance lock exclusively; [compacted] is
   the freshly rebalanced munk. *)
let split_chunk_locked db c compacted floor =
  let left, right = Munk.split_entries compacted ~min_retained_version:(Some floor) in
  match right with
  | [] -> Chunk.set_munk c (Some compacted)
  | (first_right : K.entry) :: _ ->
    Obs.Trace.with_span (Obs.trace db.obs) ~name:"chunk_split"
      ~attrs:
        [
          ("bytes", Munk.byte_size compacted); ("entries", Munk.entry_count compacted);
        ]
      (fun _sp ->
    let mid = first_right.key in
    let old_funk = Chunk.funk c in
    (* Phase 1: two new chunks sharing the old funk (§3.4). [c]'s
       ownership transfers to the first new chunk; the second becomes an
       additional owner. *)
    Funk.add_owner old_funk;
    let counter = Chunk.counter_base c in
    let c1 =
      Chunk.create_inheriting ~id:(fresh_chunk_id db) ~min_key:(Chunk.min_key c) ~funk:old_funk
        ~munk:(Some (Munk.of_sorted left)) ~counter
    in
    let c2 =
      Chunk.create_inheriting ~id:(fresh_chunk_id db) ~min_key:mid ~funk:old_funk
        ~munk:(Some (Munk.of_sorted right)) ~counter
    in
    Chunk.set_next c1 (Some c2);
    splice_chunks db c ~first:c1 ~last:c2;
    Lfu.transfer db.lfu ~old_id:(Chunk.id c) ~new_ids:[ Chunk.id c1; Chunk.id c2 ];
    Chunk_stats.record_split db.cstats (Chunk.id c) ~now:(now_ns ());
    Chunk_stats.transfer db.cstats ~now:(now_ns ()) ~old_ids:[ Chunk.id c ]
      ~new_ids:[ Chunk.id c1; Chunk.id c2 ];
    (* The retired chunk keeps its munk so that readers holding stale
       references continue to be served (§3.4). *)
    (* Phase 2: give each new chunk its own funk. Puts may already be
       flowing into the new chunks (appending to the shared funk's log);
       flushing each munk under its chunk's exclusive lock captures
       them. A concurrent LFU eviction may have dropped (and possibly
       already flushed) a new chunk's munk in the meantime — if the
       chunk still shares the old funk, rebuild its funk from the shared
       content clipped to its range. *)
    List.iter
      (fun nc ->
        let lock = Chunk.rebalance_lock nc in
        Rwlock.lock_exclusive lock;
        Fun.protect
          ~finally:(fun () -> Rwlock.unlock_exclusive lock)
          (fun () ->
            if Chunk.funk nc == old_funk then
              match Chunk.munk nc with
              | Some munk -> ignore (flush_munk_locked db nc munk)
              | None ->
                let floor = compaction_floor db nc in
                let id = fresh_funk_id db in
                let funk' =
                  Funk.create_from_iter db.env ~block_bytes:db.cfg.sstable_block_bytes ~id
                    ~min_key:(Chunk.min_key nc)
                    (K.compact ~min_retained_version:floor (chunk_entries db nc old_funk))
                in
                Chunk.set_funk nc funk';
                Chunk.set_bloom nc (Some (build_bloom db funk'));
                rebuild_view db funk';
                publish_funks db ~add:[ id ] ~disown:[ old_funk ]))
      [ c1; c2 ])

(* Bypass-chain length grows with the appended/sorted ratio, not the
   appended count alone: every put's [Munk.find_position] walk is
   bounded by the entries appended since the last rebalance that fall
   between two sorted-prefix anchors, so a munk with a small sorted
   prefix (worst case: a fresh one, prefix empty) degrades to an O(n)
   list walk per put long before a fixed threshold fires. Scale the
   trigger with the sorted prefix — expected walk stays ~1/4 entry for
   uniform keys — and cap it at the configured limit so a huge munk
   keeps today's rebalance cadence. *)
let munk_appended_limit db m =
  let sorted = Munk.entry_count m - Munk.appended_count m in
  min db.cfg.munk_rebalance_appended (max 128 (sorted / 4))

let munk_over_threshold db m =
  Munk.byte_size m > db.cfg.munk_rebalance_bytes
  || Munk.appended_count m > munk_appended_limit db m

(* Munk rebalance: compact in memory; split if over the size limit.
   [force] bypasses the double-checked trigger — explicit maintenance
   compacts below-threshold munks on purpose (tombstone resolution for
   the merge trigger), and must not be treated as a convoy straggler. *)
let munk_rebalance ?(force = false) db c =
  let lock = Chunk.rebalance_lock c in
  Rwlock.lock_exclusive lock;
  Fun.protect
    ~finally:(fun () -> Rwlock.unlock_exclusive lock)
    (fun () ->
      if not (Chunk.retired c) then
        match Chunk.munk c with
        | None -> ()
        | Some munk when (not force) && not (munk_over_threshold db munk) ->
          (* Double-checked: several writers can cross the trigger
             together and queue for the exclusive lock; whoever gets it
             first does the work and installs a compacted munk, so the
             rest must re-read the trigger here or they each re-sort an
             already-clean munk back to back, stalling every writer
             behind a convoy of no-op compactions. *)
          ()
        | Some munk ->
          Obs.Trace.with_span (Obs.trace db.obs) ~name:"munk_rebalance" (fun sp ->
              Chunk_stats.record_rebalance db.cstats (Chunk.id c) ~now:(now_ns ());
              let floor = compaction_floor db c in
              let compacted = Munk.rebalance munk ~min_retained_version:(Some floor) in
              Obs.Trace.add_attr sp "bytes" (Munk.byte_size compacted);
              Obs.Trace.add_attr sp "entries" (Munk.entry_count compacted);
              if Munk.byte_size compacted > db.cfg.max_chunk_bytes then
                split_chunk_locked db c compacted floor
              else Chunk.set_munk c (Some compacted)))

let split_entry_list entries =
  let entry_bytes (e : K.entry) =
    String.length e.key + (match e.value with Some v -> String.length v | None -> 0) + 64
  in
  let total = List.fold_left (fun acc e -> acc + entry_bytes e) 0 entries in
  let rec assign acc_bytes last_left left = function
    | [] -> (List.rev left, [])
    | (e : K.entry) :: rest ->
      let same = match last_left with Some k -> String.equal k e.key | None -> false in
      if acc_bytes * 2 < total || same || last_left = None then
        assign (acc_bytes + entry_bytes e) (Some e.key) (e :: left) rest
      else (List.rev left, e :: rest)
  in
  assign 0 None [] entries

(* Funk rebalance for a munk-less (cold) chunk: merge SSTable + log
   into a fresh funk without blocking puts for the duration of the
   merge; records appended meanwhile are diverted to the new funk's
   log at flip time (§3.4). *)
let cold_funk_rebalance db c =
  Funk.with_pin
    ~current:(fun () -> Chunk.funk c)
    (fun funk ->
      Obs.Trace.with_span (Obs.trace db.obs) ~name:"cold_funk_rebalance" (fun sp ->
      Chunk_stats.record_rebalance db.cstats (Chunk.id c) ~now:(now_ns ());
      let log_end = Funk.log_size funk in
      let floor = compaction_floor db c in
      let merged =
        K.to_list (K.compact ~min_retained_version:floor (chunk_entries db c funk))
      in
      Obs.Counter.incr db.ctr_funk_merges;
      Obs.Trace.add_attr sp "entries" (List.length merged);
      let entry_bytes (e : K.entry) =
        String.length e.key + (match e.value with Some v -> String.length v | None -> 0) + 64
      in
      let total = List.fold_left (fun acc e -> acc + entry_bytes e) 0 merged in
      Obs.Trace.add_attr sp "bytes" total;
      let divert_records target_of =
        (* Copy post-merge appends into the new funk(s). Current-epoch
           records only can appear here. *)
        Log_file.Reader.fold ~lo:log_end db.env (Funk.log_name (Funk.id funk)) ~init:()
          ~f:(fun () _off e -> ignore (Funk.append (target_of e.K.key) e))
      in
      if total <= db.cfg.max_chunk_bytes then begin
        let id = fresh_funk_id db in
        let funk' =
          Funk.create_from_iter db.env ~block_bytes:db.cfg.sstable_block_bytes ~id
            ~min_key:(Chunk.min_key c) (K.of_list merged)
        in
        let lock = Chunk.rebalance_lock c in
        Rwlock.lock_exclusive lock;
        Fun.protect
          ~finally:(fun () -> Rwlock.unlock_exclusive lock)
          (fun () ->
            if Chunk.retired c || Chunk.munk c <> None then
              (* Lost a race with a split or a munk load; discard the
                 rebuilt funk (it never entered the manifest). *)
              Funk.retire funk'
            else begin
              divert_records (fun _ -> funk');
              Chunk.set_funk c funk';
              Chunk.set_bloom c (Some (build_bloom db funk'));
              (* Built after the divert so the view covers it. *)
              rebuild_view db funk';
              publish_funks db ~add:[ id ] ~disown:[ funk ]
            end)
      end
      else begin
        (* Cold split: the merged content exceeds the chunk limit. *)
        let left, right = split_entry_list merged in
        match right with
        | [] -> ()
        | first_right :: _ ->
          let mid = first_right.K.key in
          let id1 = fresh_funk_id db in
          let funk1 =
            Funk.create_from_iter db.env ~block_bytes:db.cfg.sstable_block_bytes ~id:id1
              ~min_key:(Chunk.min_key c) (K.of_list left)
          in
          let id2 = fresh_funk_id db in
          let funk2 =
            (* Neither half is in the manifest yet; if the second build
               dies, discard the first so nothing lingers on disk. *)
            try
              Funk.create_from_iter db.env ~block_bytes:db.cfg.sstable_block_bytes ~id:id2
                ~min_key:mid (K.of_list right)
            with exn ->
              Funk.retire funk1;
              raise exn
          in
          let lock = Chunk.rebalance_lock c in
          Rwlock.lock_exclusive lock;
          Fun.protect
            ~finally:(fun () -> Rwlock.unlock_exclusive lock)
            (fun () ->
              if Chunk.retired c || Chunk.munk c <> None then begin
                Funk.retire funk1;
                Funk.retire funk2
              end
              else begin
                divert_records (fun key ->
                    if String.compare key mid < 0 then funk1 else funk2);
                let counter = Chunk.counter_base c in
                let c1 =
                  Chunk.create_inheriting ~id:(fresh_chunk_id db) ~min_key:(Chunk.min_key c)
                    ~funk:funk1 ~munk:None ~counter
                in
                let c2 =
                  Chunk.create_inheriting ~id:(fresh_chunk_id db) ~min_key:mid ~funk:funk2
                    ~munk:None ~counter
                in
                Chunk.set_bloom c1 (Some (build_bloom db funk1));
                Chunk.set_bloom c2 (Some (build_bloom db funk2));
                rebuild_view db funk1;
                rebuild_view db funk2;
                Chunk.set_next c1 (Some c2);
                splice_chunks db c ~first:c1 ~last:c2;
                Lfu.transfer db.lfu ~old_id:(Chunk.id c) ~new_ids:[ Chunk.id c1; Chunk.id c2 ];
                Chunk_stats.record_split db.cstats (Chunk.id c) ~now:(now_ns ());
                Chunk_stats.transfer db.cstats ~now:(now_ns ()) ~old_ids:[ Chunk.id c ]
                  ~new_ids:[ Chunk.id c1; Chunk.id c2 ];
                publish_funks db ~add:[ id1; id2 ] ~disown:[ funk ]
              end)
      end))

(* Funk rebalance dispatch: with a munk we flush (in-memory compaction
   + sequential write); without, we merge on disk. One rebuild per funk
   at a time (the paper's funkChangeLock, acquired with try-lock). *)
let funk_rebalance db c =
  let m = Chunk.funk_change_mutex c in
  if Mutex.try_lock m then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock m)
      (fun () ->
        match Chunk.munk c with
        | Some _ ->
          let lock = Chunk.rebalance_lock c in
          Rwlock.lock_exclusive lock;
          Fun.protect
            ~finally:(fun () -> Rwlock.unlock_exclusive lock)
            (fun () ->
              if not (Chunk.retired c) then
                match Chunk.munk c with
                | Some munk ->
                  Chunk_stats.record_rebalance db.cstats (Chunk.id c) ~now:(now_ns ());
                  ignore (flush_munk_locked db c munk)
                | None -> ())
        | None -> (
          (* The chunk may be retired by a concurrent split before we
             pin its funk; its replacements then handle their own
             maintenance. *)
          try cold_funk_rebalance db c with Funk.Stale -> ()))

let funk_log_limit db c =
  match Chunk.munk c with
  | Some _ -> db.cfg.funk_log_limit_with_munk
  | None -> db.cfg.funk_log_limit_no_munk

let needs_munk_rebalance db c =
  match Chunk.munk c with
  | Some m -> munk_over_threshold db m
  | None -> false

let needs_funk_rebalance db c = Funk.log_size (Chunk.funk c) > funk_log_limit db c

let maybe_maintain db c =
  if not (Chunk.retired c) then begin
    if needs_munk_rebalance db c then munk_rebalance db c;
    if (not (Chunk.retired c)) && needs_funk_rebalance db c then funk_rebalance db c
  end

(* ------------------------------------------------------------------ *)
(* Merging underflowing chunks                                         *)

(* The paper describes merging as "a similar protocol" to splitting
   and notes its prototype does not implement it (§3.4); we do, so
   delete-heavy workloads do not strand swarms of near-empty chunks. *)

let chunk_weight c =
  match Chunk.munk c with
  | Some m -> Munk.byte_size m
  | None -> Funk.total_bytes (Chunk.funk c)

let needs_merge db c =
  match Chunk.next c with
  | Some n ->
    (not (Chunk.retired c))
    && (not (Chunk.retired n))
    (* Funk sizes over-estimate live data until their next rebalance,
       so cold chunks merge lazily — only once compaction has caught
       up. *)
    && chunk_weight c + chunk_weight n < db.cfg.max_chunk_bytes / 2
  | None -> false

(* Merge [c] with its successor [n]. Exclusive locks are taken in list
   order (as every multi-chunk operation does), so merges cannot
   deadlock against each other or against splits. *)
let merge_chunks db c n =
  let lc = Chunk.rebalance_lock c in
  Rwlock.lock_exclusive lc;
  Fun.protect
    ~finally:(fun () -> Rwlock.unlock_exclusive lc)
    (fun () ->
      let still_adjacent =
        (not (Chunk.retired c)) && match Chunk.next c with Some x -> x == n | None -> false
      in
      if still_adjacent then begin
        let ln = Chunk.rebalance_lock n in
        Rwlock.lock_exclusive ln;
        Fun.protect
          ~finally:(fun () -> Rwlock.unlock_exclusive ln)
          (fun () ->
            if not (Chunk.retired n) then begin
              Obs.Trace.with_span (Obs.trace db.obs) ~name:"chunk_merge" (fun sp ->
              let floor = min (compaction_floor db c) (compaction_floor db n) in
              (* Under both exclusive locks the funks cannot be flipped
                 or retired (we are their owners), so direct reads are
                 safe. *)
              let content_of ch =
                match Chunk.munk ch with
                | Some m -> Munk.iter m
                | None -> chunk_entries db ch (Chunk.funk ch)
              in
              let entries =
                K.to_list
                  (K.compact ~min_retained_version:floor
                     (K.merge [ content_of c; content_of n ]))
              in
              let id = fresh_funk_id db in
              let funk' =
                Funk.create_from_iter db.env ~block_bytes:db.cfg.sstable_block_bytes ~id
                  ~min_key:(Chunk.min_key c) (K.of_list entries)
              in
              let counter = max (Chunk.counter_base c) (Chunk.counter_base n) in
              let cm =
                Chunk.create_inheriting ~id:(fresh_chunk_id db) ~min_key:(Chunk.min_key c)
                  ~funk:funk' ~munk:(Some (Munk.of_sorted entries)) ~counter
              in
              Mutex.lock db.structural;
              Fun.protect
                ~finally:(fun () -> Mutex.unlock db.structural)
                (fun () ->
                  Chunk.set_next cm (Chunk.next n);
                  (match find_predecessor db c with
                  | None -> Atomic.set db.head cm
                  | Some pred -> Chunk.set_next pred (Some cm));
                  Atomic.set db.index (Chunk_index.of_first_chunk (Atomic.get db.head)));
              Chunk.retire c;
              Chunk.retire n;
              row_cache_purge db cm;
              Lfu.transfer db.lfu ~old_id:(Chunk.id c) ~new_ids:[ Chunk.id cm ];
              Lfu.remove db.lfu (Chunk.id n);
              Chunk_stats.transfer db.cstats ~now:(now_ns ())
                ~old_ids:[ Chunk.id c; Chunk.id n ]
                ~new_ids:[ Chunk.id cm ];
              ignore (Lfu.force_insert db.lfu (Chunk.id cm));
              Obs.Trace.add_attr sp "entries" (List.length entries);
              publish_funks db ~add:[ id ] ~disown:[ Chunk.funk c; Chunk.funk n ])
            end)
      end)

(* ------------------------------------------------------------------ *)
(* Put                                                                 *)

let rec put_entry db key value_opt =
  let c = lookup_put db key in
  let lock = Chunk.rebalance_lock c in
  (* Charge the blocking acquire to Lock_wait only when actually
     contended (a rebalance holds or awaits the chunk lock), keeping
     the uncontended path at one try_lock. *)
  if not (Rwlock.try_lock_shared lock) then
    Attr.timed Attr.Lock_wait (fun () -> Rwlock.lock_shared lock);
  let retry = Chunk.retired c in
  if retry then begin
    Rwlock.unlock_shared lock;
    Domain.cpu_relax ();
    put_entry db key value_opt
  end
  else begin
    Fun.protect
      ~finally:(fun () -> Rwlock.unlock_shared lock)
      (fun () ->
        assert (Chunk.covers c ~key);
        let slot = Pending_ops.begin_put db.po ~key in
        Fun.protect
          ~finally:(fun () -> Pending_ops.finish db.po slot)
          (fun () ->
            let gv = Atomic.get db.gv in
            Pending_ops.publish_put_version db.po slot ~key ~version:gv;
            let counter = Chunk.next_counter c in
            let entry : K.entry = { key; value = value_opt; version = gv; counter } in
            let funk = Chunk.funk c in
            let off = Funk.append funk entry in
            Obs.Counter.incr db.ctr_log_appends;
            (match db.committer with
            | Some gc -> Group_commit.sync gc funk
            | None -> ());
            (match Chunk.munk c with
            | Some munk ->
              let may_discard ~old_version ~new_version =
                let pf = persist_floor db in
                (not (old_version <= pf && pf < new_version))
                && not
                     (Pending_ops.exists_scan_between db.po ~key ~old_version ~new_version)
              in
              Munk.put munk ~may_discard entry
            | None ->
              Chunk.bloom_note_put c ~key ~log_offset:off;
              (match value_opt with
              | Some v -> Row_cache.update_if_present db.row_cache key v ~version:gv ~counter
              | None -> Row_cache.invalidate db.row_cache key));
            (* Change-stream tap: by this point the entry is appended
               and — under Sync — covered by the group-commit fsync, so
               the stream never carries unacked data. *)
            match Atomic.get db.commit_hook with
            | Some hook -> Attr.timed Attr.Repl_ship (fun () -> hook entry)
            | None -> ()));
    ignore
      (Atomic.fetch_and_add db.logical_written
         (String.length key + match value_opt with Some v -> String.length v | None -> 0));
    Chunk_stats.record_put db.cstats (Chunk.id c) ~now:(now_ns ());
    c
  end

and put_entry_and_maintain db key value_opt =
  Topk.observe db.topk (prefix_of db key);
  let c =
    (* Tracked so a batch leader's fill-aware formation wait can tell
       whether this writer is mid-append and worth waiting for. *)
    match db.committer with
    | Some gc -> Group_commit.track gc (fun () -> put_entry db key value_opt)
    | None -> put_entry db key value_opt
  in
  note_access db c;
  (* The put itself is durable by this point (or already raised); an
     I/O failure inside piggy-backed maintenance rolls itself back and
     the next over-threshold put retries it, so it is absorbed here and
     surfaced through the "io.errors" counter rather than failing an
     acked write. *)
  (match db.maint with
  | None -> (
    (* Inline maintenance is the put paying for rebalance/split work —
       the attribution cause this layer exists to expose. *)
    try Attr.timed Attr.Rebalance (fun () -> maybe_maintain db c)
    with Env.Io_error _ | Env.Corruption _ -> Obs.Counter.incr db.ctr_io_errors)
  | Some m ->
    if needs_munk_rebalance db c || needs_funk_rebalance db c then begin
      Mutex.lock m.m_mutex;
      if not (Hashtbl.mem m.m_queue (Chunk.id c)) then begin
        Hashtbl.replace m.m_queue (Chunk.id c) c;
        Condition.signal m.m_cond
      end;
      Mutex.unlock m.m_mutex
    end);
  let n = Atomic.fetch_and_add db.put_count 1 + 1 in
  (* Flight-recorder cadence: one frame every 4096 puts — cheap enough
     to stay always-on, frequent enough that the 64-frame ring covers
     the last ~256k puts. *)
  if n land 4095 = 0 then ignore (Obs.Recorder.tick db.recorder);
  if
    db.cfg.persistence = Config.Async
    && db.cfg.checkpoint_every_puts > 0
    && n mod db.cfg.checkpoint_every_puts = 0
  then
    (* Same policy as maintenance: an opportunistic checkpoint that hits
       an injected fault leaves the previous checkpoint intact and the
       next interval retries; only an explicit [checkpoint] propagates. *)
    try Attr.timed Attr.Fsync (fun () -> checkpoint_auto db)
    with Env.Io_error _ | Env.Corruption _ -> Obs.Counter.incr db.ctr_io_errors

(* ------------------------------------------------------------------ *)
(* Checkpoint (§3.5)                                                   *)

and checkpoint_locked db =
  Obs.Trace.with_span (Obs.trace db.obs) ~name:"checkpoint" (fun _sp ->
      let gv = Atomic.fetch_and_add db.gv 1 in
      Pending_ops.wait_pending_puts db.po ~low:"" ~high:None ~upto:gv;
      Env.fsync_all db.env;
      Checkpoint_file.store db.env ~version:gv;
      Atomic.set db.last_checkpoint gv)

(* Opportunistic (put-path) checkpoint: skip if one is in flight. *)
and checkpoint_auto db =
  if Mutex.try_lock db.checkpoint_mutex then
    Fun.protect ~finally:(fun () -> Mutex.unlock db.checkpoint_mutex) (fun () ->
        checkpoint_locked db)

let checkpoint db =
  Mutex.lock db.checkpoint_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock db.checkpoint_mutex) (fun () ->
      checkpoint_locked db)

let put db key value =
  if Atomic.get db.fenced then raise Fenced;
  Attr.with_op db.attr Attr.Put db.tm_put (fun () -> put_entry_and_maintain db key (Some value))

let delete db key =
  if Atomic.get db.fenced then raise Fenced;
  Attr.with_op db.attr Attr.Delete db.tm_delete (fun () -> put_entry_and_maintain db key None)

let set_commit_hook db hook = Atomic.set db.commit_hook hook

(* ------------------------------------------------------------------ *)
(* Scan (§3.3)                                                         *)

let bounded_iter it ~high =
  let stopped = ref false in
  fun () ->
    if !stopped then None
    else
      match it () with
      | Some (e : K.entry) when String.compare e.key high <= 0 -> Some e
      | _ ->
        stopped := true;
        None

let scan_internal db ?limit ~low ~high () =
  if String.compare low high > 0 then []
  else begin
    let slot = Pending_ops.begin_scan db.po ~low ~high:(Some high) in
    Fun.protect
      ~finally:(fun () -> Pending_ops.finish db.po slot)
      (fun () ->
        let gv = Atomic.fetch_and_add db.gv 1 in
        Pending_ops.publish_scan_version db.po slot ~low ~high:(Some high) ~version:gv;
        (* Waiting out in-flight puts below the scan version is the
           scan-side lock wait of the paper's §3.3 protocol. *)
        Attr.timed Attr.Lock_wait (fun () ->
            Pending_ops.wait_pending_puts db.po ~low ~high:(Some high) ~upto:gv);
        let acc = ref [] in
        let count = ref 0 in
        let max_count = match limit with None -> max_int | Some l -> l in
        let consume it =
          let filtered =
            K.dedup (K.filter (fun (e : K.entry) -> e.version <= gv && visible db e.version) it)
          in
          let rec go () =
            if !count < max_count then
              match filtered () with
              | None -> ()
              | Some { value = None; _ } -> go ()
              | Some { key; value = Some v; _ } ->
                acc := (key, v) :: !acc;
                incr count;
                go ()
          in
          go ()
        in
        (* [lo] is the residual range start: keys below it were already
           collected from earlier chunks (or retries). *)
        let rec over_chunks lo c =
          note_access db c;
          Chunk_stats.record_scan db.cstats (Chunk.id c) ~now:(now_ns ());
          let stale =
            match Chunk.munk c with
            | Some munk ->
              consume (Munk.iter_range munk ~low:lo ~high);
              false
            | None -> (
              (* The chunk may have been split underneath us; [Stale]
                 means its funk is gone — re-resolve the residual range
                 through the rebuilt index. [with_pin] never runs the
                 body on failure, so nothing is consumed twice. *)
              try
                Funk.with_pin
                  ~current:(fun () -> Chunk.funk c)
                  (fun funk ->
                    (* Unified read path: walk the persistent sorted
                       view (one pre-merged cursor, blocks through the
                       shared cache) and fall back to re-merging
                       log + SSTable when the view is absent or stale.
                       Both paths materialise before [consume], so a
                       mid-walk failure never consumes half a chunk. *)
                    let via_view =
                      if not db.cfg.Config.sorted_view_enabled then None
                      else
                        Attr.timed Attr.Cache_read @@ fun () ->
                        match
                          Funk.load_view funk
                            ~on_load:(fun () -> Obs.Counter.incr db.ctr_view_loads)
                        with
                        | None -> None
                        | Some v -> (
                          try
                            let it = Funk.view_cursor funk v ~low:lo ~high in
                            let rec drain acc =
                              match it () with
                              | Some (e : K.entry) ->
                                drain (if visible db e.version then e :: acc else acc)
                              | None -> List.rev acc
                            in
                            Some (drain [])
                          with Sorted_view.Stale | Env.Corruption _ ->
                            Funk.invalidate_view funk;
                            Obs.Counter.incr db.ctr_view_fallbacks;
                            None)
                    in
                    match via_view with
                    | Some entries ->
                      Obs.Counter.incr db.ctr_view_scans;
                      Attr.timed Attr.Cache_read (fun () -> consume (K.of_list entries))
                    | None ->
                      Attr.timed Attr.Disk_read @@ fun () ->
                      let log_entries =
                        Funk.log_entries_in_range funk ~visible:(visible db) ~low:lo ~high
                      in
                      (* Materialise the SSTable's slice before consuming:
                         a corrupt block then degrades this one chunk to
                         its log contents instead of aborting the scan
                         half-consumed (logs resync past damage and never
                         raise). *)
                      let sst_entries =
                        try
                          let it =
                            bounded_iter (Sstable.Reader.iter_from (Funk.sst funk) lo) ~high
                          in
                          let rec drain acc =
                            match it () with
                            | Some (e : K.entry) ->
                              drain (if visible db e.version then e :: acc else acc)
                            | None -> List.rev acc
                          in
                          drain []
                        with Env.Corruption _ -> []
                      in
                      consume (K.merge [ K.of_list log_entries; K.of_list sst_entries ]));
                false
              with Funk.Stale -> true)
          in
          if stale then over_chunks lo (lookup_read db lo)
          else if !count < max_count then
            match Chunk.next c with
            | Some n when String.compare (Chunk.min_key n) high <= 0 ->
              over_chunks (Chunk.min_key n) n
            | _ -> ()
        in
        over_chunks low (lookup_read db low);
        List.rev !acc)
  end

let scan db ?limit ~low ~high () =
  Attr.with_op db.attr Attr.Scan db.tm_scan (fun () -> scan_internal db ?limit ~low ~high ())

(* ------------------------------------------------------------------ *)
(* Open / recovery / close                                             *)

(* Persistence-mode marker: recovery must know whether the *previous*
   incarnation ran synchronously — in that case its funks reflect every
   completed update (§3.5) and the whole epoch is visible, checkpoint
   or not. *)
let mode_file = "MODE"

let store_mode env (mode : Config.persistence) =
  let tmp = mode_file ^ ".tmp" in
  let f = Env.create env tmp in
  Env.append f (match mode with Config.Sync -> "sync" | Config.Async -> "async");
  Env.fsync f;
  Env.close_file f;
  Env.rename env ~old_name:tmp ~new_name:mode_file

let load_mode env : Config.persistence =
  if not (Env.exists env mode_file) then Config.Async
  else if Env.read_all env mode_file = "sync" then Config.Sync
  else Config.Async

(* Failover fencing: the marker survives restarts, so a deposed primary
   stays read-only until an operator removes it. *)
let fence_marker = "FENCED"

let write_fence_marker env =
  let tmp = fence_marker ^ ".tmp" in
  let f = Env.create env tmp in
  Env.append f "fenced";
  Env.fsync f;
  Env.close_file f;
  Env.rename env ~old_name:tmp ~new_name:fence_marker

let parse_funk_file name =
  (* funk_NNNNNNNN.sst / .log / .view *)
  if String.length name >= 17 && String.sub name 0 5 = "funk_" then
    match int_of_string_opt (String.sub name 5 8) with
    | Some id ->
      let ext = String.sub name 13 (String.length name - 13) in
      if ext = ".sst" then Some (id, `Sst)
      else if ext = ".log" then Some (id, `Log)
      else if ext = ".view" then Some (id, `View)
      else None
    | None -> None
  else None

let span_names =
  [
    "munk_rebalance";
    "chunk_split";
    "cold_funk_rebalance";
    "funk_flush";
    "chunk_merge";
    "checkpoint";
    "recovery";
  ]

(* Snapshot-time gauges: mirror counters owned by layers below obs
   (caches, Io_stats) and structural state, so exports always reflect
   the live store without the lower layers depending on Evendb_obs. *)
let register_probes db =
  let p = Obs.probe db.obs in
  p "cache.row.hits" (fun () -> Row_cache.hits db.row_cache);
  p "cache.row.misses" (fun () -> Row_cache.misses db.row_cache);
  p "cache.row.evictions" (fun () -> Row_cache.evictions db.row_cache);
  p "cache.lfu.hits" (fun () -> Lfu.hits db.lfu);
  p "cache.lfu.misses" (fun () -> Lfu.misses db.lfu);
  p "cache.lfu.evictions" (fun () -> Lfu.evictions db.lfu);
  (* The block cache may be shared store-wide (one budget across every
     shard of a range-sharded front end); these probes then report the
     shared cache's totals from each shard's registry. *)
  let with_bc f = match Env.block_cache db.env with Some bc -> f bc | None -> 0 in
  p "blockcache.hits" (fun () -> with_bc Block_cache.hits);
  p "blockcache.misses" (fun () -> with_bc Block_cache.misses);
  p "blockcache.fills" (fun () -> with_bc Block_cache.fills);
  p "blockcache.evictions" (fun () -> with_bc Block_cache.evictions);
  p "blockcache.bytes" (fun () -> with_bc Block_cache.resident_bytes);
  p "db.chunks" (fun () -> Chunk_index.size (Atomic.get db.index));
  p "db.munks" (fun () ->
      List.length
        (List.filter (fun c -> Chunk.munk c <> None) (Chunk_index.chunks (Atomic.get db.index))));
  p "db.log_bytes" (fun () ->
      List.fold_left
        (fun acc c -> acc + Funk.log_size (Chunk.funk c))
        0
        (Chunk_index.chunks (Atomic.get db.index)));
  p "db.logical_bytes_written" (fun () -> Atomic.get db.logical_written);
  p "faults.injected" (fun () -> Env.faults_injected db.env);
  p "io.corruptions" (fun () -> Env.corruptions_detected db.env);
  p "log.resyncs" (fun () -> Env.log_resyncs db.env);
  let st = Env.stats db.env in
  List.iter
    (fun kind ->
      let kn = Io_stats.kind_name kind in
      p
        (Printf.sprintf "io.%s.bytes_written" kn)
        (fun () -> (Io_stats.snapshot_kind st kind).Io_stats.bytes_written);
      p
        (Printf.sprintf "io.%s.bytes_read" kn)
        (fun () -> (Io_stats.snapshot_kind st kind).Io_stats.bytes_read))
    Io_stats.all_kinds

let make_db env cfg ~obs ~committer ~head ~chunks ~gv ~rt ~epoch ~last_checkpoint ~next_funk_id ~live =
  let lfu = Lfu.create ~capacity:cfg.Config.munk_cache_capacity () in
  List.iter
    (fun c -> if Chunk.munk c <> None then ignore (Lfu.force_insert lfu (Chunk.id c)))
    chunks;
  let live_funks = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace live_funks id ()) live;
  List.iter (Obs.Trace.declare (Obs.trace obs)) span_names;
  let db = {
    env;
    cfg;
    head = Atomic.make head;
    index = Atomic.make (Chunk_index.build chunks);
    gv = Atomic.make gv;
    po = Pending_ops.create ~slots:cfg.Config.po_slots ();
    row_cache =
      Row_cache.create ~tables:cfg.Config.row_cache_tables
        ~capacity_per_table:cfg.Config.row_cache_capacity_per_table ();
    lfu;
    rt;
    epoch;
    last_checkpoint = Atomic.make last_checkpoint;
    next_funk_id = Atomic.make next_funk_id;
    next_chunk_id = Atomic.make (List.length chunks);
    live_funks;
    structural = Mutex.create ();
    checkpoint_mutex = Mutex.create ();
    rstats = Read_stats.create ~detailed:cfg.Config.collect_read_stats;
    cstats = Chunk_stats.create ~half_life_ns:cfg.Config.heat_half_life_ns ();
    topk = Topk.create ~capacity:cfg.Config.topk_capacity ();
    recorder = Obs.recorder obs;
    logical_written = Atomic.make 0;
    put_count = Atomic.make 0;
    closed = Atomic.make false;
    fenced = Atomic.make (Env.exists env fence_marker);
    commit_hook = Atomic.make None;
    committer =
      (* A caller-supplied committer lets several stores share one batch
         stream (the sharded front end: one fsync can cover appends to
         every shard's log). Only meaningful under Sync — ignored
         otherwise, matching the put path which never consults it. *)
      (if cfg.Config.persistence = Config.Sync then
         match committer with
         | Some _ as c -> c
         | None ->
           Some
             (Group_commit.create ~max_batch:cfg.Config.group_commit_max_batch
                ~max_wait_ns:cfg.Config.group_commit_max_wait_ns obs)
       else None);
    maint =
      (if cfg.Config.background_maintenance then
         Some
           {
             m_mutex = Mutex.create ();
             m_cond = Condition.create ();
             m_queue = Hashtbl.create 16;
             m_stop = false;
             m_domain = None;
           }
       else None);
    obs;
    attr =
      Attr.create ~enabled:cfg.Config.attr_enabled
        ~threshold_ns:cfg.Config.attr_slow_threshold_ns ~ring:cfg.Config.attr_slow_ring
        ~watchdog_share_ppm:cfg.Config.attr_watchdog_share_ppm
        ~watchdog_cooldown_ops:cfg.Config.attr_watchdog_cooldown_ops obs;
    tm_put = Obs.timer obs "db.put";
    tm_get = Obs.timer obs "db.get";
    tm_delete = Obs.timer obs "db.delete";
    tm_scan = Obs.timer obs "db.scan";
    ctr_log_appends = Obs.counter obs "funk.log_appends";
    ctr_funk_flushes = Obs.counter obs "funk.flushes";
    ctr_funk_merges = Obs.counter obs "funk.merges";
    ctr_io_errors = Obs.counter obs "io.errors";
    ctr_view_builds = Obs.counter obs "sorted_view.builds";
    ctr_view_loads = Obs.counter obs "sorted_view.loads";
    ctr_view_scans = Obs.counter obs "sorted_view.scans";
    ctr_view_fallbacks = Obs.counter obs "sorted_view.stale_fallbacks";
    opened_at_ns = Obs.now_ns ();
    tel_mutex = Mutex.create ();
    telemetry = None;
  }
  in
  (* Eager-register the snapshot/backup counter families so a full
     exposition always carries them (with HELP/TYPE), not only after
     the first snapshot or backup. *)
  List.iter
    (fun n -> ignore (Obs.counter obs n))
    [ "snapshot.created"; "snapshot.dropped"; "backup.funks_shipped"; "backup.bytes" ];
  register_probes db;
  (* A watchdog trip cuts a flight-recorder frame, so the stall's
     counter deltas are pinned in the ring even if nobody is polling. *)
  Attr.set_trip_hook db.attr (fun _cause -> ignore (Obs.Recorder.tick db.recorder));
  db

let maintainer_loop db m =
  let rec next () =
    Mutex.lock m.m_mutex;
    let rec await () =
      if m.m_stop then begin
        Mutex.unlock m.m_mutex;
        None
      end
      else begin
        let item =
          let found = ref None in
          (try
             Hashtbl.iter
               (fun id c ->
                 found := Some (id, c);
                 raise Exit)
               m.m_queue
           with Exit -> ());
          !found
        in
        match item with
        | Some (id, c) ->
          Hashtbl.remove m.m_queue id;
          Mutex.unlock m.m_mutex;
          Some c
        | None ->
          Condition.wait m.m_cond m.m_mutex;
          await ()
      end
    in
    match await () with
    | None -> ()
    | Some c ->
      (try maybe_maintain db c with
      | Funk.Stale -> ()
      | Env.Io_error _ | Env.Corruption _ ->
        (* Maintenance failed cleanly; the chunk re-queues on the next
           over-threshold put. *)
        Obs.Counter.incr db.ctr_io_errors);
      next ()
  in
  next ()

let start_maintainer db =
  match db.maint with
  | Some m -> m.m_domain <- Some (Domain.spawn (fun () -> maintainer_loop db m))
  | None -> ()

let stop_maintainer db =
  match db.maint with
  | Some m ->
    Mutex.lock m.m_mutex;
    m.m_stop <- true;
    Condition.broadcast m.m_cond;
    Mutex.unlock m.m_mutex;
    (match m.m_domain with Some d -> Domain.join d | None -> ());
    m.m_domain <- None
  | None -> ()

let open_internal config ~committer env =
  let obs = Obs.create () in
  match Manifest.load env with
  | None ->
    (* Fresh database: one sentinel chunk covering the whole key space,
       with an empty funk and an empty resident munk. *)
    let funk =
      Funk.create_from_iter env ~block_bytes:config.Config.sstable_block_bytes ~id:0 ~min_key:""
        (K.of_list [])
    in
    Manifest.store env { next_id = 1; live = [ 0 ] };
    Recovery_table.store env Recovery_table.empty;
    store_mode env config.Config.persistence;
    let chunk = Chunk.create ~id:0 ~min_key:"" ~funk ~munk:(Some (Munk.of_sorted [])) in
    make_db env config ~obs ~committer ~head:chunk ~chunks:[ chunk ] ~gv:(Version.pack ~epoch:0 ~seq:0)
      ~rt:Recovery_table.empty ~epoch:0 ~last_checkpoint:(-1) ~next_funk_id:1 ~live:[ 0 ]
  | Some manifest ->
    (* Recovery (§3.5): bump the epoch, record the previous epoch's
       checkpoint in the recovery table, rebuild chunk metadata from
       the funk files, and resume; data loads into munks lazily. *)
    Obs.Trace.with_span (Obs.trace obs) ~name:"recovery"
      ~attrs:[ ("funks", List.length manifest.Manifest.live) ]
      (fun recovery_sp ->
    let rt_old = Recovery_table.load env in
    let ckpt = Checkpoint_file.load env in
    let prev_epoch = Recovery_table.max_epoch rt_old + 1 in
    let prev_ckpt_seq =
      match load_mode env with
      | Config.Sync ->
        (* Synchronous persistence: every completed put is on disk. *)
        (1 lsl Version.seq_bits) - 1
      | Config.Async -> (
        match ckpt with
        | Some v when Version.epoch v = prev_epoch -> Version.seq v
        | _ -> -1)
    in
    let rt = Recovery_table.add rt_old ~epoch:prev_epoch ~last_seq:prev_ckpt_seq in
    Recovery_table.store env rt;
    store_mode env config.Config.persistence;
    let epoch = prev_epoch + 1 in
    if epoch > Version.max_epoch then failwith "Evendb: epoch space exhausted";
    (* Remove leftovers of interrupted rebuilds. Quarantined files (moved
       aside by fsck --repair) are evidence, never swept; snapshot
       members are pinned by their own namespace, where only
       half-published snapshots (no COMPLETE marker — a crash between
       pin and publish) are collected; telemetry journal segments are
       observational history a future sampler resumes over. *)
    let live_set = Hashtbl.create 16 in
    List.iter (fun id -> Hashtbl.replace live_set id ()) manifest.Manifest.live;
    List.iter
      (fun name ->
        if not (Env.is_quarantined name || Env.is_snapshot name || Env.is_telemetry name)
        then
          match parse_funk_file name with
          | Some (id, _) when not (Hashtbl.mem live_set id) -> Env.delete env name
          | Some _ -> ()
          | None -> if Filename.check_suffix name ".tmp" then Env.delete env name)
      (Env.list_files env);
    ignore (Snapshot.sweep_orphans env);
    let funks = List.map (fun id -> Funk.open_existing env ~id) manifest.Manifest.live in
    (* A crash between the two manifest updates of [publish_funks] leaves
       both the replaced funk and its replacement live under the same
       min-key. The replacement (higher id) is a superset — the flip
       happened under the chunk's exclusive rebalance lock — so keep it
       and sweep the stale one. Persist the pruned manifest before
       deleting so a second crash cannot resurrect the loser. *)
    let by_key = Hashtbl.create 16 in
    List.iter
      (fun f ->
        let k = Funk.min_key f in
        match Hashtbl.find_opt by_key k with
        | Some prev when Funk.id prev >= Funk.id f -> ()
        | _ -> Hashtbl.replace by_key k f)
      funks;
    let losers = List.filter (fun f -> Hashtbl.find by_key (Funk.min_key f) != f) funks in
    let funks, manifest =
      match losers with
      | [] -> (funks, manifest)
      | _ ->
        let keep = List.filter (fun f -> not (List.memq f losers)) funks in
        let manifest =
          { manifest with Manifest.live = List.map Funk.id keep }
        in
        Manifest.store env manifest;
        List.iter Funk.retire losers;
        (keep, manifest)
    in
    let funks =
      List.sort (fun a b -> String.compare (Funk.min_key a) (Funk.min_key b)) funks
    in
    (match funks with
    | f :: _ when Funk.min_key f = "" -> ()
    | _ -> invalid_arg "Evendb.open_: missing sentinel funk");
    let chunks =
      List.mapi (fun i f -> Chunk.create ~id:i ~min_key:(Funk.min_key f) ~funk:f ~munk:None) funks
    in
    let rec link = function
      | a :: (b :: _ as rest) ->
        Chunk.set_next a (Some b);
        link rest
      | _ -> ()
    in
    link chunks;
    let head = List.hd chunks in
    let last_ckpt = match ckpt with Some v -> v | None -> -1 in
    Obs.Trace.add_attr recovery_sp "chunks" (List.length chunks);
    Obs.Trace.add_attr recovery_sp "bytes"
      (List.fold_left (fun acc f -> acc + Funk.total_bytes f) 0 funks);
    make_db env config ~obs ~committer ~head ~chunks ~gv:(Version.pack ~epoch ~seq:0) ~rt ~epoch
      ~last_checkpoint:last_ckpt ~next_funk_id:manifest.Manifest.next_id
      ~live:manifest.Manifest.live)

let open_ ?(config = Config.default) ?committer env =
  Config.validate config;
  (* No-op when the env already carries a cache — a store opened on a
     shard's sub-env joins the parent's (store-wide) budget. *)
  Env.install_block_cache env ~capacity_bytes:config.Config.block_cache_bytes;
  let db = open_internal config ~committer env in
  start_maintainer db;
  db

let open_dir ?config dir = open_ ?config (Env.disk dir)

let chunk_count db = Chunk_index.size (Atomic.get db.index)

let all_chunks db = Chunk_index.chunks (Atomic.get db.index)

(* ------------------------------------------------------------------ *)
(* Fencing and snapshots                                               *)

let fence db =
  write_fence_marker db.env;
  Atomic.set db.fenced true

let fenced db = Atomic.get db.fenced

let unfence db =
  Env.delete db.env fence_marker;
  Atomic.set db.fenced false

let copy_file env ~src ~dst ~len =
  let out = Env.create env dst in
  (try
     let step = 64 * 1024 in
     let rec go off =
       if off < len then begin
         let n = min step (len - off) in
         Env.append out (Env.read_at env src ~off ~len:n);
         go (off + n)
       end
     in
     go 0;
     Env.fsync out;
     Env.close_file out
   with exn ->
     Env.close_file out;
     (try Env.delete env dst with _ -> ());
     raise exn)

(* Pin one funk per chunk so no file in the set can be deleted while it
   is being copied. A funk that retires mid-walk (rebalance/split racing
   the pin) restarts the walk against the refreshed index. *)
let pin_funks db =
  let rec attempt tries =
    if tries > 64 then failwith "Db.snapshot: funk set would not stabilize";
    let chunks = Chunk_index.chunks (Atomic.get db.index) in
    let rec pin acc = function
      | [] -> Some (List.rev acc)
      | c :: rest ->
        let rec try_pin spins =
          if spins > 64 then None
          else begin
            let f = Chunk.funk c in
            if Funk.acquire f then Some f
            else begin
              (* The funk was retired under us (swap in flight); the
                 chunk will shortly expose its replacement — or is
                 itself retired, in which case restart from the index. *)
              Domain.cpu_relax ();
              if Chunk.retired c then None else try_pin (spins + 1)
            end
          end
        in
        (match try_pin 0 with
        | Some f -> pin (f :: acc) rest
        | None ->
          List.iter Funk.release acc;
          None)
    in
    match pin [] chunks with
    | Some fs -> fs
    | None ->
      Domain.cpu_relax ();
      attempt (tries + 1)
  in
  attempt 0

let enforce_snapshot_retention db =
  let cap = db.cfg.Config.snapshot_max_retained in
  if cap > 0 then begin
    let infos = Snapshot.list db.env in
    let excess = List.length infos - cap in
    if excess > 0 then
      List.iteri
        (fun i (s : Snapshot.info) ->
          if i < excess then begin
            Snapshot.drop db.env ~id:s.Snapshot.id;
            Obs.Counter.incr (Obs.counter db.obs "snapshot.dropped")
          end)
        infos
  end

let snapshot db ~id =
  Snapshot.validate_id id;
  if Snapshot.exists db.env ~id then
    invalid_arg (Printf.sprintf "Db.snapshot: snapshot %S already exists" id);
  Mutex.lock db.checkpoint_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock db.checkpoint_mutex)
    (fun () ->
      (* The same consistent cut as a checkpoint: bump the version and
         wait for every put below it to finish. Records above the cut
         may still leak into the copied logs; the snapshot's own
         checkpoint/recovery-table pair makes them invisible. *)
      let v = Atomic.fetch_and_add db.gv 1 in
      Pending_ops.wait_pending_puts db.po ~low:"" ~high:None ~upto:v;
      let pinned = pin_funks db in
      Fun.protect
        ~finally:(fun () -> List.iter Funk.release pinned)
        (fun () ->
          (* A split-shared funk backs two chunks: copy it once. *)
          let seen = Hashtbl.create 16 in
          let uniq =
            List.filter
              (fun f ->
                if Hashtbl.mem seen (Funk.id f) then false
                else begin
                  Hashtbl.replace seen (Funk.id f) ();
                  true
                end)
              pinned
          in
          let members =
            List.map
              (fun f ->
                let fid = Funk.id f in
                let log_len = Funk.log_size f in
                let sst = Funk.sst_name fid and log = Funk.log_name fid in
                copy_file db.env ~src:sst ~dst:(Snapshot.member ~id sst)
                  ~len:(Env.size db.env sst);
                copy_file db.env ~src:log ~dst:(Snapshot.member ~id log) ~len:log_len;
                (fid, log_len))
              uniq
          in
          let next_id = Atomic.get db.next_funk_id in
          Manifest.store ~name:(Snapshot.member ~id Manifest.file_name) db.env
            { Manifest.next_id; live = List.map fst members };
          Recovery_table.store ~name:(Snapshot.member ~id Recovery_table.file_name) db.env
            db.rt;
          Checkpoint_file.store ~name:(Snapshot.member ~id Checkpoint_file.file_name) db.env
            ~version:v;
          (* MODE is pinned to async regardless of the source's mode: a
             store restored from these files must clip visibility at the
             snapshot checkpoint, never trust whole logs. *)
          let mf = Env.create db.env (Snapshot.member ~id mode_file) in
          Env.append mf "async";
          Env.fsync mf;
          Env.close_file mf;
          let info = { Snapshot.id; version = v; next_id; funks = members } in
          Snapshot.store_complete db.env info;
          Obs.Counter.incr (Obs.counter db.obs "snapshot.created");
          enforce_snapshot_retention db;
          info))

let list_snapshots db = Snapshot.list db.env

let drop_snapshot db ~id =
  if Snapshot.exists db.env ~id then begin
    Snapshot.drop db.env ~id;
    Obs.Counter.incr (Obs.counter db.obs "snapshot.dropped")
  end

let munk_count db =
  List.length (List.filter (fun c -> Chunk.munk c <> None) (all_chunks db))

let chunk_weights db =
  List.map
    (fun c -> (Chunk.min_key c, chunk_weight c, Chunk.munk c <> None))
    (all_chunks db)

let log_space db =
  List.fold_left
    (fun acc c -> acc + Funk.log_size (Chunk.funk c))
    0 (all_chunks db)

let write_amplification db =
  let written = (Io_stats.snapshot (Env.stats db.env)).Io_stats.bytes_written in
  let logical = logical_bytes_written db in
  if logical = 0 then 0.0 else float_of_int written /. float_of_int logical

(* ------------------------------------------------------------------ *)
(* Spatial-locality telemetry                                          *)

type chunk_stat = {
  cs_id : int;
  cs_min_key : string;
  cs_munk_resident : bool;
  cs_resident_bytes : int;
  cs_stat : Chunk_stats.stat;
}

let chunk_stats db =
  let now = now_ns () in
  List.map
    (fun c ->
      let id = Chunk.id c in
      {
        cs_id = id;
        cs_min_key = Chunk.min_key c;
        cs_munk_resident = Chunk.munk c <> None;
        cs_resident_bytes = (match Chunk.munk c with Some m -> Munk.byte_size m | None -> 0);
        cs_stat =
          (match Chunk_stats.stat db.cstats id ~now with
          | Some s -> s
          | None -> Chunk_stats.zero);
      })
    (all_chunks db)

let hot_prefixes db = (Topk.entries db.topk, Topk.total db.topk)
let dump_trace db = Obs.to_chrome_trace ~extra:(Attr.chrome_events db.attr) db.obs
let recorder db = db.recorder

(* {2 Continuous telemetry} *)

let uptime_ns db = now_ns () - db.opened_at_ns

(* Extra per-tick gauges the registry doesn't carry: uptime and the
   hottest key prefixes from the Space-Saving sketch (lower-bound
   counts, hottest first). *)
let sampler_extra db () =
  let entries, _total = hot_prefixes db in
  let hot =
    entries
    |> List.filteri (fun i _ -> i < 16)
    |> List.map (fun (prefix, lo, _hi) -> ("hot." ^ prefix, lo))
  in
  ("db.uptime_ns", uptime_ns db) :: hot

let start_sampler db =
  Mutex.protect db.tel_mutex (fun () ->
      match db.telemetry with
      | Some tel -> tel.tel_sampler
      | None ->
        let journal =
          if db.cfg.Config.telemetry_journal_segments > 0 then
            Some
              (Tel.Journal.create db.env
                 ~segment_bytes:db.cfg.Config.telemetry_journal_segment_bytes
                 ~max_segments:db.cfg.Config.telemetry_journal_segments)
          else None
        in
        let sampler =
          Tel.Sampler.create ~ring:db.cfg.Config.telemetry_ring ?journal
            ~extra:(sampler_extra db)
            ~sources:[ ("", db.obs) ]
            ()
        in
        Tel.Sampler.start sampler ~interval_ns:db.cfg.Config.telemetry_interval_ns;
        db.telemetry <- Some { tel_sampler = sampler; tel_journal = journal; tel_http = None };
        sampler)

let telemetry_sampler db =
  Mutex.protect db.tel_mutex (fun () ->
      Option.map (fun tel -> tel.tel_sampler) db.telemetry)

let stat_json db =
  let b = Buffer.create 4096 in
  let up = uptime_ns db in
  Printf.bprintf b "{\"uptime_ns\":%d,\"ops\":{" up;
  let up_s = float_of_int up /. 1e9 in
  List.iteri
    (fun i (name, tm) ->
      if i > 0 then Buffer.add_char b ',';
      let count = Obs.Timer.count tm in
      let per_s = if up_s > 0. then float_of_int count /. up_s else 0. in
      Printf.bprintf b "\"%s\":{\"count\":%d,\"per_s\":%.2f}" name count per_s)
    [ ("put", db.tm_put); ("get", db.tm_get); ("delete", db.tm_delete); ("scan", db.tm_scan) ];
  Buffer.add_string b "},\"metrics\":";
  Buffer.add_string b (Obs.to_json db.obs);
  Buffer.add_string b ",\"attr\":";
  Buffer.add_string b (Attr.to_json db.attr);
  Buffer.add_char b '}';
  Buffer.contents b

let telemetry_index =
  "evendb telemetry\n\
   /metrics    Prometheus text exposition\n\
   /stat.json  uptime, op rates, full metrics + attribution JSON\n\
   /series     windowed samples (ring), ?last=N for the newest N\n\
   /trace      Chrome trace-event JSON (chrome://tracing, Perfetto)\n\
   /slow       slow-op ring as JSONL\n"

let serve_telemetry ?host ?(port = 0) db =
  let sampler = start_sampler db in
  Mutex.protect db.tel_mutex (fun () ->
      let tel = Option.get db.telemetry in
      match tel.tel_http with
      | Some h -> Tel.Http.port h
      | None ->
        let handler ~path ~query =
          match path with
          | "/" | "/index" -> Some (Tel.Http.text telemetry_index)
          | "/metrics" -> Some (Tel.Http.text (Obs.to_prometheus db.obs))
          | "/stat.json" -> Some (Tel.Http.json (stat_json db))
          | "/series" ->
            let last =
              match List.assoc_opt "last" query with
              | Some v -> int_of_string_opt v
              | None -> None
            in
            Some (Tel.Http.json (Tel.Sampler.to_json ?last sampler))
          | "/trace" -> Some (Tel.Http.json (dump_trace db))
          | "/slow" -> Some (Tel.Http.text (Attr.slow_ops_jsonl db.attr))
          | _ -> None
        in
        let h = Tel.Http.start ?host ~port handler in
        tel.tel_http <- Some h;
        Tel.Http.port h)

let stop_telemetry db =
  let tel =
    Mutex.protect db.tel_mutex (fun () ->
        let tel = db.telemetry in
        db.telemetry <- None;
        tel)
  in
  match tel with
  | None -> ()
  | Some tel ->
    (match tel.tel_http with Some h -> Tel.Http.stop h | None -> ());
    Tel.Sampler.stop tel.tel_sampler;
    (match tel.tel_journal with Some j -> Tel.Journal.close j | None -> ())

let reset_metrics db =
  Obs.reset db.obs;
  Attr.reset db.attr;
  Read_stats.reset db.rstats;
  Chunk_stats.reset db.cstats ~now:(now_ns ());
  Topk.reset db.topk;
  Obs.Recorder.reset db.recorder

(* Non-zero resettable metrics — anything here right after
   [reset_metrics] on a quiescent store is a bug. Gauges and probes are
   excluded: they mirror live structural state (chunk counts, resident
   bytes) that reset must not touch. *)
let metrics_residue db =
  let s = Obs.snapshot db.obs in
  let from_registry =
    List.filter_map
      (fun (name, v) ->
        match v with
        | Obs.Counter n when n <> 0 -> Some name
        | Obs.Timer tm when tm.Obs.t_count <> 0 -> Some name
        | _ -> None)
      s.Obs.metrics
  in
  let from_spans =
    List.filter_map
      (fun (st : Obs.Trace.span_stat) ->
        if st.Obs.Trace.span_count <> 0 then Some ("span." ^ st.Obs.Trace.span_name) else None)
      s.Obs.spans
  in
  let from_chunks = Chunk_stats.residue db.cstats ~now:(now_ns ()) in
  let from_topk = if Topk.total db.topk <> 0 then [ "topk.total" ] else [] in
  from_registry @ from_spans @ from_chunks @ from_topk

let maintain db =
  let rec fixpoint iter =
    if iter < 8 then begin
      let dirty = ref false in
      List.iter
        (fun c ->
          if (not (Chunk.retired c)) && (needs_munk_rebalance db c || needs_funk_rebalance db c)
          then begin
            dirty := true;
            maybe_maintain db c
          end
          else if not (Chunk.retired c) then
            (* Explicit maintenance compacts opportunistically too, so
               post-maintain weights reflect live data (merge trigger,
               tests, phase boundaries in benchmarks). Tombstones may
               sit in-place-overwritten cells with nothing appended. *)
            match Chunk.munk c with
            | Some m when Munk.appended_count m > 0 || Munk.tombstone_count m > 0 ->
              dirty := true;
              munk_rebalance ~force:true db c
            | _ -> ())
        (all_chunks db);
      (* Merge underflowing neighbours to a fixpoint (each merge
         changes the list, so re-scan after every one). *)
      let rec merge_pass budget =
        if budget > 0 then
          match List.find_opt (fun c -> needs_merge db c) (all_chunks db) with
          | Some c -> (
            match Chunk.next c with
            | Some n ->
              dirty := true;
              merge_chunks db c n;
              merge_pass (budget - 1)
            | None -> ())
          | None -> ()
      in
      merge_pass (List.length (all_chunks db));
      if !dirty then fixpoint (iter + 1)
    end
  in
  fixpoint 0

let evict_munk db key =
  let c = lookup_put db key in
  let evicted = evict_munk_chunk db c in
  if evicted then Lfu.drop_cached db.lfu (Chunk.id c);
  evicted

let close db =
  if Atomic.compare_and_set db.closed false true then begin
    stop_telemetry db;
    stop_maintainer db;
    (* An I/O failure in the final checkpoint/fsync propagates (the
       caller learns the shutdown was not clean), but the log writers
       are closed regardless so no descriptors leak. *)
    Fun.protect
      ~finally:(fun () ->
        List.iter
          (fun c -> try Funk.close_log (Chunk.funk c) with _ -> ())
          (all_chunks db))
      (fun () ->
        (match db.cfg.persistence with Config.Async -> checkpoint db | Config.Sync -> ());
        Env.fsync_all db.env)
  end
