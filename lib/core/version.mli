(** Version numbers with embedded epochs (§3.5).

    "A version is split into an epoch number [...] and a per-epoch
    version number. Incrementing the GV in the normal mode effectively
    increases the latter. The recovery procedure increments the former
    and resets the latter."

    We pack both into one OCaml int: the top 16 bits (of 62 usable,
    keeping the value non-negative) hold the epoch, the remaining 46
    the per-epoch sequence. Comparisons of packed versions across
    epochs remain monotone because epochs only grow. *)

val seq_bits : int
val max_epoch : int

val pack : epoch:int -> seq:int -> int
(** Raises [Invalid_argument] on overflow of either field. *)

val epoch : int -> int
val seq : int -> int

val first_of_epoch : int -> int
(** [pack ~epoch ~seq:0]. *)
