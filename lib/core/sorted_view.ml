open Evendb_util
open Evendb_storage
open Evendb_sstable
open Evendb_log
module K = Kv_iter

(* REMIX-style persistent sorted view of one funk.

   A funk's cold-scan path historically re-merged the funk log (fold +
   sort) with the sstable on every scan. The sorted view persists the
   outcome of that merge as a token sequence: walking the tokens in
   order visits every entry of sstable + covered log prefix in
   canonical {!Kv_iter.compare_entries} order, touching each source
   exactly once with a cursor instead of re-sorting.

   On-disk format (little-endian, varints as in {!Varint}):

   {v
     magic "EVVIEW01"                      8 bytes
     sst_entry_count                       varint   } identity of the
     sst_file_size                         varint   } sstable at build
     log_upto                              varint   covered log bytes
     log_crc                               u32 LE   masked CRC32C of log[0,log_upto)
     n_tokens                              varint
     token*                                varint each:
                                             0     = next sstable entry in order
                                             k > 0 = log record framed at byte k-1
     n_fences                              varint
     fence*                                (token_idx varint, sst_consumed varint,
                                            klen varint, key bytes)
     trailer_crc                           u32 LE   masked CRC32C of everything above
   v}

   Fences are emitted every [fence_every] tokens and let a range scan
   seek: the cursor starts at the last fence whose key is strictly
   below the scan's low bound and positions the sstable iterator at
   that fence's [sst_consumed] via {!Sstable.Reader.iter_from_nth}.

   Views are derived data. [load] validates the trailer CRC, the
   sstable identity and a CRC over the covered log prefix; any
   mismatch yields [None] and the caller falls back to the merge path.
   [cursor] re-checks each log record's own frame CRC as it is read
   and raises {!Stale} on any disagreement mid-walk, so a view can
   never silently serve bytes the log no longer contains. Log records
   appended after the build (offsets >= log_upto) are folded, sorted
   and merged in at scan time — a view is useful until the uncovered
   suffix grows large, at which point the owner rebuilds it. *)

let magic = "EVVIEW01"
let fence_every = 256

type fence = { f_token : int; f_sst_consumed : int; f_key : string }

type t = {
  tokens : int array; (* 0 = sst; k > 0 = log offset k-1 *)
  fences : fence array;
  log_upto : int;
}

exception Stale

let token_count t = Array.length t.tokens
let covered_log_bytes t = t.log_upto

let add_u32 buf v =
  Buffer.add_int32_le buf v

let read_u32 s pos = String.get_int32_le s pos

(* ------------------------------------------------------------------ *)
(* Build                                                               *)

let build env ~sst ~log_name ~view_name =
  let log_upto = try Env.size env log_name with Not_found -> 0 in
  let log_crc =
    if log_upto = 0 then Crc32c.string ""
    else Crc32c.string (Env.read_at env log_name ~off:0 ~len:log_upto)
  in
  (* Stable sort keeps equal (key, version, counter) triples in append
     order; ties between log and sstable go to the log. Either way the
     duplicates carry identical values (GV versions are unique per
     update), so tie order can never change scan results. *)
  let log_entries =
    List.stable_sort (fun (_, a) (_, b) -> K.compare_entries a b) (Log_file.Reader.entries env log_name)
  in
  let sst_it = Sstable.Reader.iter sst in
  let tbuf = Buffer.create 4096 in
  let fences = ref [] in
  let n_tokens = ref 0 in
  let sst_consumed = ref 0 in
  let maybe_fence (e : K.entry) =
    if !n_tokens mod fence_every = 0 then fences := (!n_tokens, !sst_consumed, e.key) :: !fences
  in
  let emit_sst (e : K.entry) =
    maybe_fence e;
    Varint.write tbuf 0;
    incr n_tokens;
    incr sst_consumed
  in
  let emit_log off (e : K.entry) =
    maybe_fence e;
    Varint.write tbuf (off + 1);
    incr n_tokens
  in
  let rec merge log_rest sst_head =
    match (log_rest, sst_head) with
    | [], None -> ()
    | [], Some e ->
      emit_sst e;
      merge [] (sst_it ())
    | (off, le) :: rest, None ->
      emit_log off le;
      merge rest None
    | (off, le) :: rest, Some se ->
      if K.compare_entries le se <= 0 then begin
        emit_log off le;
        merge rest sst_head
      end
      else begin
        emit_sst se;
        merge log_rest (sst_it ())
      end
  in
  merge log_entries (sst_it ());
  let buf = Buffer.create (Buffer.length tbuf + 256) in
  Buffer.add_string buf magic;
  Varint.write buf (Sstable.Reader.entry_count sst);
  Varint.write buf (try Env.size env (Sstable.Reader.name sst) with Not_found -> 0);
  Varint.write buf log_upto;
  add_u32 buf (Crc32c.mask log_crc);
  Varint.write buf !n_tokens;
  Buffer.add_buffer buf tbuf;
  let fences = List.rev !fences in
  Varint.write buf (List.length fences);
  List.iter
    (fun (tok, consumed, key) ->
      Varint.write buf tok;
      Varint.write buf consumed;
      Varint.write buf (String.length key);
      Buffer.add_string buf key)
    fences;
  let body = Buffer.contents buf in
  add_u32 buf (Crc32c.mask (Crc32c.string body));
  let data = Buffer.contents buf in
  (* Atomic publication: the view either exists whole or not at all.
     The ".tmp" suffix puts interrupted builds under the scrubber's
     existing leftover-tmp sweep. *)
  let tmp = view_name ^ ".tmp" in
  try
    let f = Env.create env tmp in
    (try
       Env.append f data;
       Env.fsync f;
       Env.close_file f
     with exn ->
       (try Env.close_file f with _ -> ());
       raise exn);
    Env.rename env ~old_name:tmp ~new_name:view_name
  with exn ->
    (try Env.delete env tmp with _ -> ());
    raise exn

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

(* Structural validation alone — is this file a well-formed view? —
   shared by [load] and the scrubber (which must flag corruption but
   not staleness: a stale view is valid derived data awaiting rebuild). *)
let parse s =
  try
    let n = String.length s in
    if n < String.length magic + 4 then raise Exit;
    if not (String.equal (String.sub s 0 (String.length magic)) magic) then raise Exit;
    let body_len = n - 4 in
    if Crc32c.mask (Crc32c.string (String.sub s 0 body_len)) <> read_u32 s body_len then raise Exit;
    let pos = ref (String.length magic) in
    let rd () =
      let v, p = Varint.read s !pos in
      pos := p;
      v
    in
    let sst_entry_count = rd () in
    let sst_file_size = rd () in
    let log_upto = rd () in
    let log_crc = read_u32 s !pos in
    pos := !pos + 4;
    let n_tokens = rd () in
    if n_tokens > body_len then raise Exit;
    let tokens = Array.init n_tokens (fun _ -> rd ()) in
    let n_fences = rd () in
    if n_fences > n_tokens + 1 then raise Exit;
    let fences =
      Array.init n_fences (fun _ ->
          let f_token = rd () in
          let f_sst_consumed = rd () in
          let klen = rd () in
          if !pos + klen > body_len then raise Exit;
          let f_key = String.sub s !pos klen in
          pos := !pos + klen;
          { f_token; f_sst_consumed; f_key })
    in
    if !pos <> body_len then raise Exit;
    Some (sst_entry_count, sst_file_size, log_crc, { tokens; fences; log_upto })
  with Exit | Invalid_argument _ -> None

let well_formed s = parse s <> None

let load env ~sst ~log_name ~view_name =
  match try Some (Env.read_all env view_name) with Not_found -> None with
  | None -> None
  | Some s -> (
    match parse s with
    | None -> None
    | Some (sst_entry_count, sst_file_size, log_crc, view) ->
      (* The view must describe *this* sstable and a prefix of *this*
         log. The sstable is immutable once published, so entry count
         plus file size pin its identity; the covered log prefix is
         re-checksummed once here (appends only extend the log, so a
         matching prefix stays matching until the file is replaced). *)
      let ok =
        try
          sst_entry_count = Sstable.Reader.entry_count sst
          && sst_file_size = Env.size env (Sstable.Reader.name sst)
          && Env.size env log_name >= view.log_upto
          &&
          let covered =
            if view.log_upto = 0 then "" else Env.read_at env log_name ~off:0 ~len:view.log_upto
          in
          Crc32c.mask (Crc32c.string covered) = log_crc
        with Not_found | Invalid_argument _ -> false
      in
      if ok then Some view else None)

(* ------------------------------------------------------------------ *)
(* Cursor                                                              *)

let cursor view env ~sst ~log_name ~low ~high : K.t =
  let covered =
    if view.log_upto = 0 then ""
    else
      try Env.read_at env log_name ~off:0 ~len:view.log_upto
      with Not_found | Invalid_argument _ -> raise Stale
  in
  (* Seek: last fence strictly below [low] — entries at the fence key
     itself may also exist before the fence, so equal keys must not be
     skipped over. *)
  let start_tok, start_sst =
    let lo = ref (-1) and hi = ref (Array.length view.fences) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if String.compare view.fences.(mid).f_key low < 0 then lo := mid else hi := mid
    done;
    if !lo < 0 then (0, 0)
    else
      let f = view.fences.(!lo) in
      (f.f_token, f.f_sst_consumed)
  in
  let sst_it = Sstable.Reader.iter_from_nth sst start_sst in
  let idx = ref start_tok in
  let finished = ref false in
  let rec token_walk () =
    if !finished || !idx >= Array.length view.tokens then None
    else begin
      let tok = view.tokens.(!idx) in
      incr idx;
      let e =
        if tok = 0 then
          match sst_it () with
          | Some e -> e
          | None -> raise Stale
        else
          match Log_file.Record.decode covered ~pos:(tok - 1) with
          | Some (e, _) -> e
          | None -> raise Stale
      in
      if String.compare e.K.key low < 0 then token_walk ()
      else if String.compare e.K.key high > 0 then begin
        finished := true;
        None
      end
      else Some e
    end
  in
  (* Records appended after the build live past [log_upto]; they are
     few (the owner rebuilds once the suffix grows) so fold-and-sort
     here costs what the old merge path paid for the whole log. *)
  let suffix =
    if (try Env.size env log_name with Not_found -> 0) <= view.log_upto then K.of_list []
    else
      let entries =
        Log_file.Reader.fold ~lo:view.log_upto env log_name ~init:[] ~f:(fun acc _off e ->
            if String.compare low e.K.key <= 0 && String.compare e.K.key high <= 0 then e :: acc
            else acc)
      in
      K.of_list (List.stable_sort K.compare_entries entries)
  in
  K.merge [ token_walk; suffix ]
