(** The Pending Operations (PO) array (§3.2).

    One slot per in-flight operation. Puts announce the key they are
    about to change *before* reading the global version, then publish
    the version they obtained; scans publish their range, then their
    snapshot version. This closes the race in which a put obtains a
    version below a scan's snapshot but has not yet inserted its value
    when the scan starts collecting (§3.2).

    Slots are acquired per-operation by CAS over a fixed array (no
    thread registration, so domains may come and go freely). Waiters
    spin; operations hold slots only for the duration of one API call.

    The same array drives version garbage collection: rebalance asks
    for the minimal snapshot version of scans overlapping a chunk, and
    puts ask whether any active scan still needs the version they are
    about to supersede.

    Range upper bounds are [string option]: [None] means +infinity
    (whole-store scans, checkpoints, last-chunk ranges). *)

type t

type slot = int

val create : ?slots:int -> unit -> t
(** [slots] defaults to 128; raises [Invalid_argument] if < 1. *)

(** {2 Put protocol} *)

val begin_put : t -> key:string -> slot
(** Claim a slot advertising a pending put of [key] with no version
    yet. Blocks (spinning) only if every slot is busy. *)

val publish_put_version : t -> slot -> key:string -> version:int -> unit

(** {2 Scan protocol} *)

val begin_scan : t -> low:string -> high:string option -> slot
val publish_scan_version : t -> slot -> low:string -> high:string option -> version:int -> unit

val finish : t -> slot -> unit
(** Release the slot (both protocols). *)

(** {2 Queries} *)

val wait_pending_puts : t -> low:string -> high:string option -> upto:int -> unit
(** Block until no put of a key in [\[low, high\]] is pending with an
    unpublished version or a published version [<= upto] (Alg. 1
    line 28). *)

val min_scan_version : t -> low:string -> high:string option -> default:int -> int
(** Minimal snapshot version among scans overlapping the range,
    waiting for scans that have announced intent but not yet published
    a version (§3.4); [default] when none overlap. The result is also
    capped at [default] (the paper's "minimum of PO scans and GV at
    rebalance start"). *)

val exists_scan_between : t -> key:string -> old_version:int -> new_version:int -> bool
(** Is there an active scan covering [key] whose snapshot [s]
    satisfies [old_version <= s < new_version]? If not, the old
    version may be discarded in place (§2.2). Scans that have not yet
    published a version count as present (conservative). *)
