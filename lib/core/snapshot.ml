open Evendb_util
open Evendb_storage
open Evendb_sstable
open Evendb_log

(* A published snapshot is a directory of pinned copies:

     snapshots/<id>/MANIFEST         funk ids in the snapshot
     snapshots/<id>/CHECKPOINT       the snapshot's version cut
     snapshots/<id>/RECOVERY_TABLE   source visibility for past epochs
     snapshots/<id>/MODE             always "async" (see below)
     snapshots/<id>/funk_*.sst|.log  the funk set, logs clipped
     snapshots/<id>/COMPLETE         publish marker, written last

   The copied logs may carry a few records *newer* than the cut (puts
   racing the publish); they are neutralized by visibility, not by
   byte-exact clipping: the snapshot's checkpoint records the cut
   version [v], and both the reader below and a restored store (MODE =
   async ⇒ recovery clips at the checkpoint) treat every record above
   [v] as invisible. COMPLETE is written last via tmp+fsync+rename, so
   a crash mid-publish leaves a directory without it — recovery's
   orphan sweep ({!sweep_orphans}) deletes such half-published
   snapshots wholesale. *)

let complete_name = "COMPLETE"
let member = Env.snapshot_member

let validate_id id =
  let ok_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '-' || c = '_' || c = '.'
  in
  if id = "" || id = "." || id = ".." || not (String.for_all ok_char id) then
    invalid_arg (Printf.sprintf "Snapshot: invalid id %S" id)

type info = {
  id : string;
  version : int; (* the cut: records above this are not in the snapshot *)
  next_id : int; (* source's next funk id at publish *)
  funks : (int * int) list; (* funk id, clipped log length *)
}

(* ------------------------------------------------------------------ *)
(* COMPLETE marker codec (varint payload + CRC32C LE trailer)          *)

let u32_le_string (crc : int32) =
  String.init 4 (fun i -> Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff))

let u32_le_of_string s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let store_complete env info =
  let buf = Buffer.create 64 in
  Varint.write buf info.version;
  Varint.write buf info.next_id;
  Varint.write buf (List.length info.funks);
  List.iter
    (fun (id, len) ->
      Varint.write buf id;
      Varint.write buf len)
    info.funks;
  let payload = Buffer.contents buf in
  let name = member ~id:info.id complete_name in
  let tmp = name ^ ".tmp" in
  let file = Env.create env tmp in
  (try
     Env.append file payload;
     Env.append file (u32_le_string (Crc32c.string payload));
     Env.fsync file;
     Env.close_file file;
     Env.rename env ~old_name:tmp ~new_name:name
   with exn ->
     Env.close_file file;
     (try Env.delete env tmp with _ -> ());
     raise exn)

let corrupt env ~id detail =
  Env.note_corruption env;
  Io_error.raise_corruption ~file:(member ~id complete_name) ~detail

let load_complete env ~id =
  let name = member ~id complete_name in
  if not (Env.exists env name) then None
  else begin
    let data = Env.read_all env name in
    if String.length data < 4 then corrupt env ~id "truncated";
    let payload = String.sub data 0 (String.length data - 4) in
    if Crc32c.string payload <> u32_le_of_string data (String.length data - 4) then
      corrupt env ~id "bad checksum";
    match
      let version, pos = Varint.read payload 0 in
      let next_id, pos = Varint.read payload pos in
      let n, pos = Varint.read payload pos in
      let rec funks acc pos = function
        | 0 -> List.rev acc
        | k ->
          let fid, pos = Varint.read payload pos in
          let len, pos = Varint.read payload pos in
          funks ((fid, len) :: acc) pos (k - 1)
      in
      { id; version; next_id; funks = funks [] pos n }
    with
    | info -> Some info
    | exception Invalid_argument _ -> corrupt env ~id "malformed payload"
  end

(* ------------------------------------------------------------------ *)
(* Namespace enumeration                                               *)

let member_names env ~id =
  List.filter
    (fun name ->
      match Env.split_snapshot name with Some (i, _) -> i = id | None -> false)
    (Env.list_files env)

let all_ids env =
  List.filter_map Env.split_snapshot (Env.list_files env)
  |> List.map fst
  |> List.sort_uniq String.compare

let exists env ~id = Env.exists env (member ~id complete_name)

let list env =
  List.filter_map
    (fun id -> try load_complete env ~id with Env.Corruption _ -> None)
    (all_ids env)
  |> List.sort (fun a b -> compare (a.version, a.id) (b.version, b.id))

let drop env ~id = List.iter (fun name -> Env.delete env name) (member_names env ~id)

let sweep_orphans env =
  (* A valid COMPLETE pins the whole directory; anything else under the
     id — including a crashed half-publish with no (or corrupt) marker
     — is garbage. Leftover [*.tmp] members are always garbage. *)
  List.fold_left
    (fun swept id ->
      let complete_ok =
        match try load_complete env ~id with Env.Corruption _ -> None with
        | Some _ -> true
        | None -> false
      in
      if not complete_ok then begin
        drop env ~id;
        swept + 1
      end
      else begin
        List.iter
          (fun name -> if Filename.check_suffix name ".tmp" then Env.delete env name)
          (member_names env ~id);
        swept
      end)
    0 (all_ids env)

(* ------------------------------------------------------------------ *)
(* Reader: a point-in-time read-only view over the pinned files        *)

type reader = {
  r_info : info;
  r_visible : int -> bool;
  r_funks : (Sstable.Reader.t * Env.t * string) list; (* sst reader, env, log name *)
}

let open_reader env ~id =
  match load_complete env ~id with
  | None -> invalid_arg (Printf.sprintf "Snapshot.open_reader: no snapshot %S" id)
  | Some info ->
    let v = info.version in
    let rt = Recovery_table.load ~name:(member ~id Recovery_table.file_name) env in
    (* Fold the cut into the table: the cut epoch is visible only up to
       the cut's sequence, and no epoch beyond it exists in the view. *)
    let rt = Recovery_table.add rt ~epoch:(Version.epoch v) ~last_seq:(Version.seq v) in
    let visible w = Recovery_table.is_visible rt ~current_epoch:(Version.epoch v + 1) w in
    let funks =
      List.map
        (fun (fid, _len) ->
          let sst = Sstable.Reader.open_ env (member ~id (Funk.sst_name fid)) in
          (sst, env, member ~id (Funk.log_name fid)))
        info.funks
    in
    { r_info = info; r_visible = visible; r_funks = funks }

let reader_info r = r.r_info

let scan r ~low ~high =
  let in_range k = String.compare low k <= 0 && String.compare k high <= 0 in
  let iters =
    List.concat_map
      (fun (sst, env, log_name) ->
        let log_entries =
          Log_file.Reader.fold env log_name ~init:[] ~f:(fun acc _off (e : Kv_iter.entry) ->
              if in_range e.key && r.r_visible e.version then e :: acc else acc)
          |> List.sort Kv_iter.compare_entries
        in
        let sst_it =
          Kv_iter.filter
            (fun (e : Kv_iter.entry) -> in_range e.key && r.r_visible e.version)
            (Sstable.Reader.iter_from sst low)
        in
        [ Kv_iter.of_list log_entries; sst_it ])
      r.r_funks
  in
  (* Funk ranges can overlap (a split-shared funk plus its successors);
     dedup keeps the newest version per key across the whole set. *)
  let merged = Kv_iter.dedup (Kv_iter.merge iters) in
  let rec collect acc =
    match merged () with
    | None -> List.rev acc
    | Some { Kv_iter.key; value = Some v; _ } when String.compare key high <= 0 ->
      collect ((key, v) :: acc)
    | Some { Kv_iter.value = None; _ } -> collect acc
    | Some _ -> List.rev acc
  in
  collect []

let get r key =
  match scan r ~low:key ~high:key with [] -> None | (_, v) :: _ -> Some v
