(** Per-component read-path accounting (Figure 9).

    Classifies every get by the component that served it — munk, row
    cache, funk log, or SSTable — and records per-component latency
    histograms when enabled. *)


type component = Munk_cache | Row_cache | Funk_log | Sstable | Missing

val component_name : component -> string

type t

val create : detailed:bool -> t

val record : t -> component -> int -> unit
(** [record t comp nanos]: count a get served by [comp]; latency is
    folded into the component histogram when [detailed]. *)

type latency = {
  mean : float;  (** nanoseconds *)
  p50 : int;
  p95 : int;
  p99 : int;
}

type summary = {
  total : int;
  fractions : (component * float) list; (* share of gets per component *)
  latencies : (component * latency) list; (* per-component, in ns *)
}

val summarize : t -> summary
val reset : t -> unit
