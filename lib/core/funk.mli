(** Funk: the file representation of a chunk (§2.2).

    "For persistence, each chunk has a file representation called funk,
    which holds all the KV-pairs in the chunk's range [...] the funk is
    divided into two parts: (1) a sorted SSTable, and (2) an unsorted
    log. New updates are appended to the log."

    A funk owns two files, [funk_<id>.sst] and [funk_<id>.log]. Funks
    are replaced wholesale by funk rebalance and splits; readers pin a
    funk with {!acquire}/{!release} so that its files are only deleted
    once the last reader drains ({!retire} marks it replaceable). The
    SSTable header stores the chunk's min-key, which is what recovery
    reconstructs chunk metadata from (§3.5). *)

open Evendb_util
open Evendb_sstable
open Evendb_storage

type t

val sst_name : int -> string
val log_name : int -> string

val view_name : int -> string
(** The sorted-view sidecar, [funk_<id>.view] (see {!Sorted_view}). *)

val create_from_iter :
  Env.t -> block_bytes:int -> id:int -> min_key:string -> Kv_iter.t -> t
(** Build a funk whose SSTable holds the iterator's entries (canonical
    order) and whose log is empty. Fsyncs the SSTable. *)

val open_existing : Env.t -> id:int -> t
(** Open after recovery; the log is positioned after its last valid
    record. Raises [Invalid_argument] if the SSTable is malformed. *)

val id : t -> int
val min_key : t -> string
val sst : t -> Sstable.Reader.t
val env : t -> Env.t

val append : t -> Kv_iter.entry -> int
(** Append one record to the log; returns its byte offset. *)

val log_size : t -> int

val log_append_count : t -> int
(** Records appended to this funk's log since it was opened. *)

val total_bytes : t -> int
val fsync_log : t -> unit

(** {2 Read paths} *)

val get_from_log :
  t -> ?segments:(int * int) list -> visible:(int -> bool) -> max_version:int -> string ->
  Kv_iter.entry option
(** Newest visible log record for the key with version [<= max_version].
    [segments] (from the partitioned bloom) restricts the byte ranges
    scanned, newest range first; default: the whole log. *)

val get_from_sst : t -> visible:(int -> bool) -> max_version:int -> string -> Kv_iter.entry option

val log_entries_in_range :
  t -> visible:(int -> bool) -> low:string -> high:string -> Kv_iter.entry list
(** All visible log records with [low <= key <= high], in canonical
    order (for scans and merges). *)

val all_entries : t -> visible:(int -> bool) -> Kv_iter.t
(** SSTable merged with the sorted log — the chunk's full visible
    content (munk load, funk rebalance). *)

val log_offsets_for_bloom : t -> visible:(int -> bool) -> (int * string) list
(** [(offset, key)] of every valid log record, for rebuilding the
    partitioned bloom filter after munk eviction or recovery. *)

(** {2 Sorted view}

    Each funk may carry a {!Sorted_view} sidecar; the handle caches
    the loaded view so repeated cold scans skip the load. *)

val build_view : t -> unit
(** (Re)build and publish the sidecar from the sstable and the log's
    current contents. The caller must prevent concurrent appends (the
    chunk's rebalance lock — the same discipline as {!retire}).
    Raises {!Env.Io_error} on storage failure. *)

val load_view : ?on_load:(unit -> unit) -> t -> Sorted_view.t option
(** The funk's validated view, loaded and cached on first use. [None]
    when the sidecar is missing, corrupt or stale; the failure is
    cached too (no per-scan disk probes) until {!build_view} or
    {!invalidate_view}. [on_load] fires only when a view was actually
    read and validated from disk (counter hook). *)

val invalidate_view : t -> unit
(** Drop the cached view (and cached load failure) so the next scan
    re-reads the sidecar — after a {!Sorted_view.Stale} mid-walk or an
    external repair. *)

val view_cursor :
  t -> Sorted_view.t -> low:string -> high:string -> Kv_iter.t
(** {!Sorted_view.cursor} over this funk's files. *)

(** {2 Lifecycle} *)

val acquire : t -> bool
(** Pin; [false] if already retired (caller refetches the chunk's
    current funk). *)

val release : t -> unit
val retire : t -> unit
(** Mark replaced and drop one reference; files are deleted when the
    last pin is released. Must not race with appends (callers hold the
    chunk's rebalanceLock exclusively when flipping funks). *)

val add_owner : t -> unit
(** Register an additional owning chunk (split phase 1: both new
    chunks share the old funk). *)

val disown : t -> bool
(** Drop one owning chunk's reference. Returns [true] when this was the
    last owner; the caller must then remove the funk from the manifest
    and call {!retire} — in that order, so a crash between the two
    leaves an orphan (swept at recovery) rather than a manifest-live
    funk with deleted files (data loss). *)

exception Stale
(** Raised by {!with_pin} when the funk stays retired across retries —
    the owning chunk was replaced; re-resolve it through the index. *)

val with_pin : current:(unit -> t) -> (t -> 'a) -> 'a
(** Pin the chunk's current funk (retrying across concurrent funk
    flips), run the function, release. Raises {!Stale} if the chunk
    itself was retired. The function itself is never re-run. *)

val close_log : t -> unit
(** Close the log's file handle (database shutdown). *)
