(** Funk manifest: the set of live funk ids plus the next id to
    allocate.

    Rewritten atomically (temp + fsync + rename) whenever the funk set
    changes (funk rebalance completion, split completion). On recovery
    the manifest determines which funk files are live; anything else
    on disk is a leftover of an interrupted rebuild and is deleted.
    Funk *contents* still self-describe (min-key in the SSTable
    header), keeping the manifest a tiny id list rather than a
    WAL-like log of range metadata. *)

open Evendb_storage

type t = {
  next_id : int;
  live : int list; (* funk ids, unordered *)
}

val file_name : string

val store : ?name:string -> Env.t -> t -> unit
val load : ?name:string -> Env.t -> t option
(** [None] when no manifest exists (fresh database). Raises
    [Invalid_argument] on corruption. [?name] overrides the location
    (default {!file_name}) — snapshots keep a pinned copy under their
    own namespace. *)
