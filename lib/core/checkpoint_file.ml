open Evendb_util
open Evendb_storage

let file_name = "CHECKPOINT"

let store ?(name = file_name) env ~version =
  let buf = Buffer.create 16 in
  Varint.write buf version;
  let payload = Buffer.contents buf in
  let crc = Crc32c.string payload in
  let tmp = name ^ ".tmp" in
  let file = Env.create env tmp in
  (* Write-tmp-then-rename: a failure anywhere leaves the previous
     checkpoint untouched; only the tmp file needs sweeping up. *)
  (try
     Env.append file payload;
     Env.append file
       (String.init 4 (fun i ->
            Char.chr (Int32.to_int (Int32.shift_right_logical crc (8 * i)) land 0xff)));
     Env.fsync file;
     Env.close_file file;
     Env.rename env ~old_name:tmp ~new_name:name
   with exn ->
     Env.close_file file;
     (try Env.delete env tmp with _ -> ());
     raise exn)

let corrupt env ~name detail =
  Env.note_corruption env;
  Io_error.raise_corruption ~file:name ~detail

let load ?(name = file_name) env =
  let corrupt env detail = corrupt env ~name detail in
  if not (Env.exists env name) then None
  else begin
    let data = Env.read_all env name in
    if String.length data < 5 then corrupt env "truncated";
    let payload = String.sub data 0 (String.length data - 4) in
    let stored =
      let b i = Int32.of_int (Char.code data.[String.length data - 4 + i]) in
      Int32.logor (b 0)
        (Int32.logor
           (Int32.shift_left (b 1) 8)
           (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))
    in
    if Crc32c.string payload <> stored then corrupt env "bad checksum";
    match Varint.read payload 0 with
    | version, _ -> Some version
    | exception Invalid_argument _ -> corrupt env "malformed payload"
  end
