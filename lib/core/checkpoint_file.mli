(** The checkpoint file (§3.5).

    Stores the packed version (epoch + sequence) up to which all
    updates are guaranteed durable: "at all times, all updates
    pertaining to versions smaller than or equal to the version
    recorded in the checkpoint file have been persisted." Written
    atomically via temp + fsync + rename. *)

open Evendb_storage

val file_name : string

val store : ?name:string -> Env.t -> version:int -> unit
val load : ?name:string -> Env.t -> int option
(** [None] if no checkpoint was ever completed. Raises
    [Invalid_argument] on corruption. [?name] overrides the location
    (default {!file_name}) for snapshot-pinned copies. *)
