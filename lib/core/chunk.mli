(** Chunk metadata (§3.1).

    "All chunks are represented in memory via light-weight volatile
    metadata objects" — the key range start, links into the chunk list,
    references to the funk and (optionally) the munk, the rebalance
    lock, the per-chunk put counter, and the partitioned bloom filter
    maintained while the chunk has no munk.

    Chunks are immutable in their key range; splits retire a chunk and
    insert two fresh ones. *)

open Evendb_util
open Evendb_bloom
open Evendb_munk

type t

val create : id:int -> min_key:string -> funk:Funk.t -> munk:Munk.t option -> t

val id : t -> int
val min_key : t -> string

val next : t -> t option
val set_next : t -> t option -> unit

val funk : t -> Funk.t
(** Current funk (unpinned — use {!Funk.with_pin} with {!funk} as the
    fetcher for reads that survive funk flips). *)

val set_funk : t -> Funk.t -> unit

val munk : t -> Munk.t option
val set_munk : t -> Munk.t option -> unit

val retired : t -> bool
val retire : t -> unit

val rebalance_lock : t -> Rwlock.t

val funk_change_mutex : t -> Mutex.t
(** Serializes funk rebuilds of this chunk (the paper's
    funkChangeLock). *)

val next_counter : t -> int
(** Monotone per-chunk counter ordering same-version puts (§3.3). *)

val counter_base : t -> int
(** Current counter value, for children to inherit on split. *)

val create_inheriting : id:int -> min_key:string -> funk:Funk.t -> munk:Munk.t option -> counter:int -> t

(** {2 Bloom filter of the funk log (munk-less chunks)} *)

val bloom_note_put : t -> key:string -> log_offset:int -> unit
(** Record a log append in the chunk's partitioned bloom, if one is
    active. Caller must hold the put-side synchronization (shared
    rebalance lock); internal mutex orders concurrent writers. *)

val bloom_segments : t -> string -> (int * int) list option
(** Candidate log ranges possibly holding the key; [None] when no
    bloom is active (search the whole log). *)

val set_bloom : t -> Partitioned_bloom.t option -> unit

val covers : t -> key:string -> bool
(** [min_key t <= key < next(t).min_key] (upper bound open-ended for
    the last chunk). *)
