(* Plain-text rendering of paper-style tables and series. *)

let heading title =
  Printf.printf "\n=== %s ===\n" title

let table ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c cell -> Printf.printf "%-*s  " (List.nth widths c) cell)
      row;
    print_newline ()
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let series ~title points =
  Printf.printf "%s\n" title;
  List.iter (fun (x, y) -> Printf.printf "  %10.2f  %12.3f\n" x y) points

let kops v = Printf.sprintf "%.1f" v
let ratio v = Printf.sprintf "%.2f" v
let ms_of_ns ns = float_of_int ns /. 1e6
let mib v = Printf.sprintf "%.1f" (float_of_int v /. 1024.0 /. 1024.0)
