(* Figure 6 (a-i): YCSB throughput across workloads P, A, B, C, D, F,
   E10/E100/E1000, dataset sizes, and key distributions — EvenDB vs
   the LSM baseline. Figure 7 (write amplification under P) is
   measured from the same P runs. *)

open Evendb_ycsb

type cell = { kops : float; wamp : float }

let run_cell (h : Harness.t) which dist ~phase ~items ~mix ~ops =
  Harness.with_engine h which (fun e ->
      let shared =
        Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:99
      in
      Runner.load e shared;
      Harness.dump_metrics e ~phase:"load";
      (* Warm caches with reads, as the paper does before measuring. *)
      let warm = Runner.run e shared Runner.workload_c ~ops:(min 2000 ops) ~threads:1 in
      ignore warm;
      Harness.dump_metrics e ~phase:"warm";
      let before_logical = e.Engine.logical_bytes () in
      let before_written = Engine.bytes_written e in
      let r = Runner.run e shared mix ~ops ~threads:h.threads in
      Harness.note_result ~phase e r;
      let logical = e.Engine.logical_bytes () - before_logical in
      let written = Engine.bytes_written e - before_written in
      {
        kops = r.Runner.kops;
        wamp = (if logical = 0 then 0.0 else float_of_int written /. float_of_int logical);
      })

let workloads h =
  [
    ("P (100% put)", Runner.workload_p);
    ("A (50/50 put/get)", Runner.workload_a);
    ("B (5/95 put/get)", Runner.workload_b);
    ("C (100% get)", Runner.workload_c);
    ("D (latest, 5/95)", Runner.workload_d);
    ("F (100% RMW)", Runner.workload_f);
    ("E10 (5% put, 95% scan10)", Runner.workload_e 10);
    ("E100 (5% put, 95% scan100)", Runner.workload_e 100);
    ("E1000 (5% put, 95% scan1000)", Runner.workload_e 1000);
  ]
  |> List.map (fun (name, mix) ->
         let scan_factor =
           match mix with
           | (Runner.Insert, _) :: (Runner.Scan n, _) :: _ -> max 1 (n / 10)
           | _ -> 1
         in
         (name, mix, max 200 (h.Harness.ops / scan_factor)))

let dists_for name =
  if String.length name > 0 && name.[0] = 'D' then [ Workload.Latest ]
  else if String.length name > 0 && name.[0] = 'P' then
    [ Workload.Zipf_composite 0.99; Workload.Zipf_simple 0.99; Workload.Uniform ]
  else [ Workload.Zipf_composite 0.99; Workload.Zipf_simple 0.99 ]

let run (h : Harness.t) =
  Report.heading "Figure 6: YCSB throughput (Kops), EvenDB vs LSM";
  let p_rows = ref [] in
  List.iter
    (fun (name, mix, ops) ->
      Printf.printf "\n-- %s --\n" name;
      let rows =
        List.concat_map
          (fun dist ->
            List.map
              (fun (bytes, label) ->
                let items = Harness.items_for h bytes in
                let phase =
                  Printf.sprintf "%s/%s/%s" name (Workload.dist_name dist) label
                in
                let ev = run_cell h `Evendb dist ~phase ~items ~mix ~ops in
                let ro = run_cell h `Lsm dist ~phase ~items ~mix ~ops in
                if name.[0] = 'P' then
                  p_rows := (Workload.dist_name dist, label, ev.wamp, ro.wamp) :: !p_rows;
                [
                  Workload.dist_name dist;
                  label;
                  Report.kops ev.kops;
                  Report.kops ro.kops;
                  Report.ratio (ev.kops /. ro.kops);
                ])
              (Harness.dataset_sizes h))
          (dists_for name)
      in
      Report.table ~header:[ "distribution"; "dataset"; "EvenDB"; "LSM"; "speedup" ] rows)
    (workloads h);
  Report.heading "Figure 7: write amplification under put-only workload P";
  Report.table
    ~header:[ "distribution"; "dataset"; "EvenDB"; "LSM" ]
    (List.rev_map
       (fun (dist, label, ev, ro) -> [ dist; label; Report.ratio ev; Report.ratio ro ])
       !p_rows)
