(* Table 4: EvenDB vs the PebblesDB-like FLSM across YCSB workloads
   and thread counts (32GB dataset, Zipf-simple in the paper; here the
   "large" scaled dataset). Reports the throughput improvement ratio
   EvenDB / FLSM. *)

open Evendb_ycsb

let run_one (h : Harness.t) which ~items ~mix ~ops ~threads =
  Harness.with_engine h which (fun e ->
      let shared =
        Workload.create_shared ~value_bytes:h.value_bytes (Workload.Zipf_simple 0.99) ~items
          ~seed:3
      in
      Runner.load e shared;
      let r = Runner.run e shared mix ~ops ~threads in
      r.Runner.kops)

let run (h : Harness.t) =
  Report.heading "Table 4: EvenDB throughput improvement over PebblesDB-like FLSM";
  let bytes, _ = List.nth (Harness.dataset_sizes h) 2 in
  let items = Harness.items_for h bytes in
  let workloads =
    [
      ("P", Runner.workload_p, h.Harness.ops);
      ("A", Runner.workload_a, h.Harness.ops);
      ("B", Runner.workload_b, h.Harness.ops);
      ("C", Runner.workload_c, h.Harness.ops);
      ("D", Runner.workload_d, h.Harness.ops);
      ("E100", Runner.workload_e 100, max 200 (h.Harness.ops / 10));
      ("F", Runner.workload_f, h.Harness.ops);
    ]
  in
  let thread_counts = [ 1; 2; 4 ] in
  Report.table
    ~header:("workload" :: List.map (fun t -> Printf.sprintf "%dT ratio" t) thread_counts)
    (List.map
       (fun (name, mix, ops) ->
         name
         :: List.map
              (fun threads ->
                let mix' = if name = "D" then Runner.workload_d else mix in
                let ev = run_one h `Evendb ~items ~mix:mix' ~ops ~threads in
                let fl = run_one h `Flsm ~items ~mix:mix' ~ops ~threads in
                Report.ratio (ev /. fl))
              thread_counts)
       workloads)
