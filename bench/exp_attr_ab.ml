(* Attribution overhead A/B: identical single-thread YCSB-A segments
   alternating between two warmed engines — one with per-op cause
   attribution, one without — so load-phase, page-cache and allocator
   noise hits both arms equally. Reports best-of-N segment throughput
   per arm and the relative overhead; CI asserts the attribution tax
   stays under a few percent at tiny scale. *)

open Evendb_ycsb

let segments = 5

let run (h : Harness.t) =
  Report.heading "Attribution overhead A/B: YCSB-A, 1 thread, attr on vs off";
  let items = Harness.items_for h (List.nth (Harness.dataset_sizes h) 0 |> fst) in
  let ops = max 1_000 h.Harness.ops in
  let mk attr_on =
    let h = { h with Harness.on_disk = false; attr_on } in
    let e = Harness.make_engine h `Evendb in
    let shared =
      Workload.create_shared ~value_bytes:h.Harness.value_bytes (Workload.Zipf_composite 0.99)
        ~items ~seed:4242
    in
    Runner.load e shared;
    (* One discarded segment warms caches and branch predictors:
       cold-start noise otherwise dwarfs the ~1-2% signal. *)
    ignore (Runner.run e shared Runner.workload_a ~ops ~threads:1);
    (e, shared)
  in
  let e_on, sh_on = mk true in
  let e_off, sh_off = mk false in
  Fun.protect
    ~finally:(fun () ->
      e_on.Engine.close ();
      e_off.Engine.close ())
    (fun () ->
      let best_on = ref 0.0 and best_off = ref 0.0 in
      for seg = 1 to segments do
        (* Alternate which arm goes first so neither always runs into a
           fresher scheduler quantum. *)
        let arms = if seg mod 2 = 1 then [ false; true ] else [ true; false ] in
        List.iter
          (fun attr_on ->
            let e, sh = if attr_on then (e_on, sh_on) else (e_off, sh_off) in
            let r = Runner.run e sh Runner.workload_a ~ops ~threads:1 in
            let phase = if attr_on then "attr_on" else "attr_off" in
            Harness.note_result ~phase e r;
            let best = if attr_on then best_on else best_off in
            if r.Runner.kops > !best then best := r.Runner.kops;
            Printf.printf "  segment %d  attr %-3s %10.1f kops\n%!" seg
              (if attr_on then "on" else "off")
              r.Runner.kops)
          arms
      done;
      Harness.note_slow ~phase:"attr_on" e_on;
      let overhead_pct =
        if !best_off > 0.0 then (!best_off -. !best_on) /. !best_off *. 100.0 else 0.0
      in
      Printf.printf
        "  best: attr off %10.1f kops   attr on %10.1f kops   overhead %+.2f%%\n" !best_off
        !best_on overhead_pct)
