(* Sync-durable write scalability at core scale: 100%-put runs at
   1/2/.../N worker domains, four arms per domain count:

     async           no durability — the ceiling
     sync-per-op     Sync, group_commit_max_batch = 1 (one fsync per put)
     sync-gc         Sync, group commit (default batching)
     sync-gc-shard   range-sharded front end (shards = domains), Sync,
                     per-shard committers, shard-affine writers

   The experiment always runs on the disk backend — the sync arms are
   fsync-bound by construction, and only a real fsync has the latency
   that group commit amortizes (concurrent writers share one fsync)
   and sharding overlaps (independent shard logs fsync in parallel, so
   blocked writers release the core to other domains even on a single
   CPU). Per-op sync stays flat as writers are added; the other sync
   arms climb.

   The three unsharded arms draw uniform keys; the sharded arm gives
   each worker its own shard's key range (Range_uniform — the paper's
   spatially-local deployment, which is what a range-sharded front end
   exists to exploit). With affine writers each shard is a solo commit
   stream, so the arm uses per-shard committers: batches never span
   another shard's log, and the independent fsync streams overlap in
   the kernel's own group commit. (A cross-shard shared committer —
   the front end's default — is for uniform routing, where it keeps
   spread-out writers coalescing; measured here it loses to stream
   overlap because one batch then fsyncs every shard's log.) The
   workload is pure puts (the paper's ingestion mix) because
   durability cost only exists on the write path.

     dune exec bench/main.exe -- scaling --threads 8 --ops 6000 --json *)

open Evendb_ycsb

(* Powers of two up to [threads], always ending at [threads] itself:
   8 -> 1/2/4/8, 2 -> 1/2 (the CI smoke), 6 -> 1/2/4/6. *)
let domain_counts threads =
  if threads <= 1 then [ 1 ]
  else begin
    let rec go d acc = if d >= threads then List.rev (threads :: acc) else go (2 * d) (d :: acc) in
    go 1 []
  end

type arm = { arm_name : string; shards : int option; config : Evendb_core.Config.t }

(* Unlike the storage-shaped experiments, this one must isolate the
   commit path: paper-scale thresholds (no splits or rebalances at
   this dataset size) and small values, so per-op cost is the fsync
   protocol and not maintenance — which is exactly what group commit
   and sharding change. *)
let value_bytes = 128

let arms (h : Harness.t) d =
  let open Evendb_core.Config in
  (* Maintenance on the paper's background domain: inline compactions
     on the put path would otherwise serialize whole commit batches
     behind a sort under the chunk's exclusive lock. *)
  let base =
    { default with attr_enabled = h.Harness.attr_on; background_maintenance = true }
  in
  let sync = { base with persistence = Sync } in
  [
    { arm_name = "async"; shards = None; config = { base with persistence = Async } };
    { arm_name = "sync-per-op"; shards = None; config = { sync with group_commit_max_batch = 1 } };
    { arm_name = "sync-gc"; shards = None; config = sync };
    { arm_name = "sync-gc-shard"; shards = Some d; config = sync };
  ]

let make_engine (h : Harness.t) arm =
  let env = Harness.fresh_env h in
  let e =
    match arm.shards with
    | None -> Engine.evendb ~config:arm.config env
    | Some shards -> Engine.evendb_sharded ~config:arm.config ~shared_commit:false ~shards env
  in
  if h.Harness.fault_profile = None then e else Engine.fault_tolerant e

let run (h : Harness.t) =
  let h = { h with Harness.on_disk = true; value_bytes } in
  Harness.note_config_override h;
  Report.heading
    "Scaling: sync-durable put throughput vs worker domains (group commit + sharded front end)";
  let domains = domain_counts h.Harness.threads in
  let items = 4096 * h.Harness.scale in
  let kops = Hashtbl.create 16 in
  List.iter
    (fun d ->
      List.iter
        (fun arm ->
          let phase = Printf.sprintf "%s/d%d" arm.arm_name d in
          let e = make_engine h arm in
          Fun.protect
            ~finally:(fun () ->
              Harness.dump_metrics e ~phase;
              e.Engine.close ())
            (fun () ->
              let dist =
                match arm.shards with
                | None -> Workload.Uniform
                | Some n -> Workload.Range_uniform n
              in
              let shared = Workload.create_shared ~value_bytes dist ~items ~seed:(1000 + d) in
              Runner.load e shared;
              let r = Runner.run e shared Runner.workload_p ~ops:h.Harness.ops ~threads:d in
              Harness.note_result ~phase e r;
              Harness.note_slow ~phase e;
              Hashtbl.replace kops (arm.arm_name, d) r.Runner.kops;
              Printf.printf
                "  d=%d %-14s %9.1f kops  p99 put %8.1f us  write-amp %.2f\n%!" d arm.arm_name
                r.Runner.kops
                (float_of_int (Evendb_util.Histogram.percentile r.Runner.put_hist 99.0) /. 1e3)
                (Engine.write_amplification e)))
        (arms h d))
    domains;
  (* The two headline ratios: what group commit buys over per-op fsync
     at the widest writer count, and how the sharded front end scales
     with domains against its own single-domain run. *)
  let get arm d = try Hashtbl.find kops (arm, d) with Not_found -> 0.0 in
  let dmax = List.fold_left max 1 domains in
  let gc_speedup =
    let per_op = get "sync-per-op" dmax in
    if per_op > 0.0 then get "sync-gc" dmax /. per_op else 0.0
  in
  Printf.printf "\n  group commit vs per-op fsync at %d writers: %.2fx\n" dmax gc_speedup;
  List.iter
    (fun d ->
      let base = get "sync-gc-shard" 1 in
      if d > 1 && base > 0.0 then
        Printf.printf "  sharded sync throughput, %d domains vs 1: %.2fx\n" d
          (get "sync-gc-shard" d /. base))
    domains
