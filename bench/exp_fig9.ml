(* Figure 9: EvenDB get-latency breakdown by serving component under
   workload A — fraction of gets served by munks / row cache / funk
   logs / SSTables, and the on-disk components' latencies. *)

open Evendb_core
open Evendb_storage
open Evendb_ycsb

let run_one (h : Harness.t) dist ~items ~ops =
  let env = Env.memory () in
  let cfg = { (Harness.evendb_config h) with Config.collect_read_stats = true } in
  let db = Db.open_ ~config:cfg env in
  let e =
    {
      Engine.name = "EvenDB";
      put = Db.put db;
      get = Db.get db;
      delete = Db.delete db;
      scan = (fun ~low ~high ~limit -> Db.scan db ~limit ~low ~high ());
      maintain = (fun () -> Db.maintain db);
      close = (fun () -> Db.close db);
      env;
      logical_bytes = (fun () -> Db.logical_bytes_written db);
      metrics = (fun () -> Db.metrics_dump db `Json);
      attr = (fun () -> Db.attr db);
      absorbed_failures = (fun () -> 0);
    }
  in
  let shared = Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:23 in
  Runner.load e shared;
  ignore (Runner.run e shared Runner.workload_c ~ops:(min 2000 ops) ~threads:1);
  let r0 = Db.read_stats db in
  ignore r0;
  ignore (Runner.run e shared Runner.workload_a ~ops ~threads:h.threads);
  let s = Db.read_stats db in
  Harness.dump_metrics e ~phase:"final";
  e.Engine.close ();
  s

let run (h : Harness.t) =
  Report.heading "Figure 9a: fraction of gets by serving component (workload A)";
  let dists = [ Workload.Zipf_composite 0.99; Workload.Zipf_simple 0.99 ] in
  let summaries =
    List.concat_map
      (fun dist ->
        List.map
          (fun (bytes, label) ->
            let items = Harness.items_for h bytes in
            (Workload.dist_name dist, label, run_one h dist ~items ~ops:h.ops))
          (Harness.dataset_sizes h))
      dists
  in
  Report.table
    ~header:[ "distribution"; "dataset"; "munk %"; "row-cache %"; "log %"; "sstable %"; "missing %" ]
    (List.map
       (fun (dist, label, (s : Read_stats.summary)) ->
         let f c =
           Printf.sprintf "%.1f" (100.0 *. List.assoc c s.Read_stats.fractions)
         in
         [
           dist; label;
           f Read_stats.Munk_cache; f Read_stats.Row_cache;
           f Read_stats.Funk_log; f Read_stats.Sstable; f Read_stats.Missing;
         ])
       summaries);
  Report.heading "Figure 9b: on-disk get latency by component (mean / p99 us)";
  Report.table
    ~header:[ "distribution"; "dataset"; "log"; "log p99"; "sstable"; "sstable p99" ]
    (List.map
       (fun (dist, label, (s : Read_stats.summary)) ->
         let lat c = List.assoc c s.Read_stats.latencies in
         let mean c = (lat c).Read_stats.mean /. 1000.0 in
         let p99 c = float_of_int (lat c).Read_stats.p99 /. 1000.0 in
         [
           dist; label;
           Printf.sprintf "%.1f" (mean Read_stats.Funk_log);
           Printf.sprintf "%.1f" (p99 Read_stats.Funk_log);
           Printf.sprintf "%.1f" (mean Read_stats.Sstable);
           Printf.sprintf "%.1f" (p99 Read_stats.Sstable);
         ])
       summaries)
