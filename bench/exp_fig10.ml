(* Figure 10 and Table 3: sensitivity to the Zipfian skew parameter
   theta — put-only and get-only throughput at each skew, plus the
   measured frequency of the most popular key. *)

open Evendb_util
open Evendb_ycsb

let thetas = [ 0.99; 0.95; 0.90; 0.85; 0.80 ]

let run_one (h : Harness.t) which dist ~items ~mix ~ops =
  Harness.with_engine h which (fun e ->
      let shared = Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:5 in
      Runner.load e shared;
      let r = Runner.run e shared mix ~ops ~threads:h.threads in
      r.Runner.kops)

let run (h : Harness.t) =
  let bytes, _ = List.nth (Harness.dataset_sizes h) 2 in
  let items = Harness.items_for h bytes in
  List.iter
    (fun (mix_name, mix) ->
      Report.heading (Printf.sprintf "Figure 10: skew sensitivity, %s (large dataset)" mix_name);
      Report.table
        ~header:[ "theta"; "EvenDB simple"; "LSM simple"; "EvenDB composite"; "LSM composite" ]
        (List.map
           (fun theta ->
             let evs = run_one h `Evendb (Workload.Zipf_simple theta) ~items ~mix ~ops:h.ops in
             let ros = run_one h `Lsm (Workload.Zipf_simple theta) ~items ~mix ~ops:h.ops in
             let evc = run_one h `Evendb (Workload.Zipf_composite theta) ~items ~mix ~ops:h.ops in
             let roc = run_one h `Lsm (Workload.Zipf_composite theta) ~items ~mix ~ops:h.ops in
             [
               Printf.sprintf "%.2f" theta;
               Report.kops evs; Report.kops ros; Report.kops evc; Report.kops roc;
             ])
           thetas))
    [ ("put only", Runner.workload_p); ("get only", Runner.workload_c) ];
  Report.heading "Table 3: frequency (%) of the most popular key per theta";
  Report.table
    ~header:[ "theta"; "Zipf-simple"; "Zipf-composite" ]
    (List.map
       (fun theta ->
         (* Zipf-simple: exact head mass of the item distribution.
            Zipf-composite: the head prefix's mass spread uniformly
            over its suffixes. *)
         let simple = Zipf.probability (Zipf.create ~theta items) 0 *. 100.0 in
         let shared = Workload.create_shared (Workload.Zipf_composite theta) ~items ~seed:5 in
         ignore shared;
         let p_count = max 1 (min (1 lsl 14) (items / 64)) in
         let per_prefix = max 1 (items / p_count) in
         let composite =
           Zipf.probability (Zipf.create ~theta p_count) 0 /. float_of_int per_prefix *. 100.0
         in
         [
           Printf.sprintf "%.2f" theta;
           Printf.sprintf "%.3f" simple;
           Printf.sprintf "%.4f" composite;
         ])
       thetas)
