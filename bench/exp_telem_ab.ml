(* Telemetry overhead A/B: identical single-thread YCSB-A segments
   alternating between two warmed EvenDB instances — one running the
   full continuous-telemetry stack (100 Hz windowed sampler, metrics
   journal, live HTTP endpoint scraped once per segment), one with
   telemetry fully off — so load-phase, page-cache and allocator noise
   hits both arms equally. The sampler's production default is 1 Hz;
   benchmarking at 100 Hz with an active scraper makes this a
   conservative upper bound. Reports best-of-N segment throughput per
   arm and the relative overhead; CI asserts the telemetry tax stays
   under a few percent at tiny scale. *)

open Evendb_ycsb
module Db = Evendb_core.Db

let segments = 5

(* The harness's stock engines never start a sampler (telemetry is
   opt-in at the Db layer), so the on-arm wraps a directly-opened Db. *)
let mk_engine ~name db env =
  {
    Engine.name;
    put = Db.put db;
    get = Db.get db;
    delete = Db.delete db;
    scan = (fun ~low ~high ~limit -> Db.scan db ~limit ~low ~high ());
    maintain = (fun () -> Db.maintain db);
    close = (fun () -> Db.close db);
    env;
    logical_bytes = (fun () -> Db.logical_bytes_written db);
    metrics = (fun () -> Db.metrics_dump db `Json);
    attr = (fun () -> Db.attr db);
    absorbed_failures = (fun () -> 0);
  }

let run (h : Harness.t) =
  Report.heading
    "Telemetry overhead A/B: YCSB-A, 1 thread, 100 Hz sampler + live endpoint vs off";
  let items = Harness.items_for h (List.nth (Harness.dataset_sizes h) 0 |> fst) in
  let ops = max 1_000 h.Harness.ops in
  let mk telem_on =
    let h = { h with Harness.on_disk = false } in
    let config =
      {
        (Harness.evendb_config h) with
        Evendb_core.Config.telemetry_interval_ns = 10_000_000 (* 100 Hz *);
      }
    in
    let env = Evendb_storage.Env.memory () in
    let db = Db.open_ ~config env in
    let port = if telem_on then Some (Db.serve_telemetry ~port:0 db) else None in
    let e = mk_engine ~name:(if telem_on then "EvenDB+telemetry" else "EvenDB") db env in
    let shared =
      Workload.create_shared ~value_bytes:h.Harness.value_bytes (Workload.Zipf_composite 0.99)
        ~items ~seed:4242
    in
    Runner.load e shared;
    (* One discarded segment warms caches and branch predictors:
       cold-start noise otherwise dwarfs the ~1-2% signal. *)
    ignore (Runner.run e shared Runner.workload_a ~ops ~threads:1);
    (db, e, shared, port)
  in
  let db_on, e_on, sh_on, port_on = mk true in
  let _db_off, e_off, sh_off, _ = mk false in
  Fun.protect
    ~finally:(fun () ->
      e_on.Engine.close ();
      e_off.Engine.close ())
    (fun () ->
      let scrape path =
        match port_on with
        | None -> ()
        | Some port -> (
          try ignore (Evendb_telemetry.Http.get ~port path) with _ -> ())
      in
      let best_on = ref 0.0 and best_off = ref 0.0 in
      for seg = 1 to segments do
        (* Alternate which arm goes first so neither always runs into a
           fresher scheduler quantum. *)
        let arms = if seg mod 2 = 1 then [ false; true ] else [ true; false ] in
        List.iter
          (fun telem_on ->
            let e, sh = if telem_on then (e_on, sh_on) else (e_off, sh_off) in
            let r = Runner.run e sh Runner.workload_a ~ops ~threads:1 in
            if telem_on then scrape "/metrics";
            let phase = if telem_on then "telem_on" else "telem_off" in
            Harness.note_result ~phase e r;
            let best = if telem_on then best_on else best_off in
            if r.Runner.kops > !best then best := r.Runner.kops;
            Printf.printf "  segment %d  telemetry %-3s %10.1f kops\n%!" seg
              (if telem_on then "on" else "off")
              r.Runner.kops)
          arms
      done;
      (* Capture the windowed series the sampler accumulated while the
         measured segments ran — the artifact's "series" block. *)
      (match port_on with
      | Some port -> (
        match Evendb_telemetry.Http.get ~port "/series?last=64" with
        | 200, body -> Harness.note_series ~phase:"telem_on" ~engine:e_on.Engine.name body
        | _ -> ()
        | exception _ -> ())
      | None -> ());
      Db.stop_telemetry db_on;
      let overhead_pct =
        if !best_off > 0.0 then (!best_off -. !best_on) /. !best_off *. 100.0 else 0.0
      in
      Printf.printf
        "  best: telemetry off %10.1f kops   telemetry on %10.1f kops   overhead %+.2f%%\n"
        !best_off !best_on overhead_pct)
