(* Figure 11: vertical scalability — EvenDB throughput vs worker
   domains for workloads P, A, C under both Zipf distributions.
   (On a single-core host the curve is flat; the harness still
   exercises the concurrency paths.) *)

open Evendb_ycsb

let run_one (h : Harness.t) dist ~items ~mix ~ops ~threads =
  Harness.with_engine h `Evendb (fun e ->
      let shared = Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:11 in
      Runner.load e shared;
      let r = Runner.run e shared mix ~ops ~threads in
      r.Runner.kops)

let run (h : Harness.t) =
  Report.heading "Figure 11: EvenDB scalability with worker threads (large dataset)";
  let bytes, _ = List.nth (Harness.dataset_sizes h) 2 in
  let items = Harness.items_for h bytes in
  let thread_counts = [ 1; 2; 4; 8 ] in
  let configs =
    [
      ("P", Runner.workload_p);
      ("A", Runner.workload_a);
      ("C", Runner.workload_c);
    ]
  in
  Report.table
    ~header:
      ("workload/dist" :: List.map (fun t -> Printf.sprintf "%dT Kops" t) thread_counts)
    (List.concat_map
       (fun (name, mix) ->
         List.map
           (fun dist ->
             (Printf.sprintf "%s %s" name (Workload.dist_name dist))
             :: List.map
                  (fun threads ->
                    Report.kops (run_one h dist ~items ~mix ~ops:h.Harness.ops ~threads))
                  thread_counts)
           [ Workload.Zipf_composite 0.99; Workload.Zipf_simple 0.99 ])
       configs)
