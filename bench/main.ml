(* Benchmark harness entry point: regenerates every table and figure
   of the paper's evaluation (§5) at laptop scale.

     dune exec bench/main.exe                 # everything, small scale
     dune exec bench/main.exe -- fig6         # one experiment
     dune exec bench/main.exe -- --scale 4    # 4x datasets and ops
     dune exec bench/main.exe -- --threads 4 --ops 100000 fig3 fig5 *)

open Cmdliner

let experiments =
  [
    ("fig1", "app popularity distribution", Exp_fig1.run);
    ("fig3", "ingestion: throughput, dynamics, write amp + Table 2 + Fig 4", Exp_fig3.run);
    ("table2", "(alias of fig3)", Exp_fig3.run);
    ("fig4", "(alias of fig3)", Exp_fig3.run);
    ("fig5", "scan-dominated analytics", Exp_fig5.run);
    ("fig6", "YCSB workloads + Figure 7 write amp", Exp_fig6.run);
    ("fig7", "(alias of fig6)", Exp_fig6.run);
    ("fig8", "tail latencies, workload A", Exp_fig8.run);
    ("fig9", "get latency breakdown", Exp_fig9.run);
    ("fig10", "skew sensitivity + Table 3", Exp_fig10.run);
    ("table3", "(alias of fig10)", Exp_fig10.run);
    ("table4", "EvenDB vs PebblesDB-like FLSM", Exp_table4.run);
    ("fig11", "thread scalability", Exp_fig11.run);
    ("fig12", "config sensitivity (log limit, bloom split)", Exp_fig12.run);
    ("ablation", "design-component ablations + sync/async cost", Exp_ablation.run);
    ("scaling", "sync-durable throughput vs domains (group commit + shards; forces --disk)", Exp_scaling.run);
    ("micro", "bechamel micro-benchmarks", Exp_micro.run);
    ("attrab", "attribution overhead A/B (attr on vs off)", Exp_attr_ab.run);
    ("telemab", "telemetry sampler+endpoint overhead A/B (telemetry on vs off)", Exp_telem_ab.run);
    ("scanview", "unified read path A/B (block cache + sorted views on vs off)", Exp_scanview.run);
  ]

(* Aliases share a runner; dedupe so `main.exe` runs each once. *)
let default_set =
  [ "fig1"; "fig3"; "fig5"; "fig6"; "fig8"; "fig9"; "fig10"; "table4"; "fig11"; "fig12"; "ablation"; "micro" ]

let run_selected scale threads ops disk fault_profile attr_on json names =
  Option.iter Harness.set_artifact_dir json;
  let fault_profile =
    Option.map
      (fun s ->
        (* Parse up front so a malformed profile fails before any
           experiment runs; the harness re-seeds a fresh plan per
           engine environment. *)
        let p = Evendb_storage.Fault.parse_profile s in
        (Evendb_storage.Fault.seed p, Evendb_storage.Fault.rate p))
      fault_profile
  in
  let h =
    { Harness.default with Harness.scale; threads; ops; on_disk = disk; fault_profile; attr_on }
  in
  let names = if names = [] then default_set else names in
  (* Aliases (table2 -> fig3, fig7 -> fig6, ...) share a runner; dedupe
     by canonical name so each runs once. *)
  let canonical =
    [ ("table2", "fig3"); ("fig4", "fig3"); ("fig7", "fig6"); ("table3", "fig10") ]
  in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun name ->
      match List.assoc_opt name (List.map (fun (n, _, f) -> (n, f)) experiments) with
      | None ->
        Printf.eprintf "unknown experiment %S; known: %s\n" name
          (String.concat ", " (List.map (fun (n, _, _) -> n) experiments));
        exit 1
      | Some f ->
        let canon = Option.value ~default:name (List.assoc_opt name canonical) in
        if not (Hashtbl.mem seen canon) then begin
          Hashtbl.replace seen canon ();
          Harness.set_experiment canon;
          f h;
          Harness.flush_artifact h
        end)
    names;
  Printf.printf "\nAll selected experiments completed.\n"

let scale_arg =
  Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Dataset/op multiplier (1 = quick).")

let threads_arg =
  Arg.(value & opt int 2 & info [ "threads" ] ~doc:"Worker domains per run.")

let ops_arg =
  Arg.(value & opt int 10_000 & info [ "ops" ] ~doc:"Measured operations per run.")

let disk_arg =
  Arg.(value & flag & info [ "disk" ] ~doc:"Use real files under /tmp instead of the in-memory environment.")

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault-profile" ] ~docv:"SEED:RATE"
        ~doc:
          "Inject storage faults while benchmarking: each append/fsync/rename fails with \
           probability RATE under a deterministic schedule derived from SEED (e.g. 42:0.01). \
           Injected counts are recorded in the per-phase metrics dumps.")

let attr_arg =
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) true
    & info [ "attr" ] ~docv:"on|off"
        ~doc:
          "Per-op tail-latency cause attribution in every engine (default on). $(b,off) \
           disables it to measure its own overhead; the attrab experiment runs both arms \
           itself regardless of this flag.")

let json_arg =
  Arg.(
    value
    & opt ~vopt:(Some "bench_artifacts") (some string) None
    & info [ "json" ] ~docv:"DIR"
        ~doc:
          "Write one machine-readable BENCH_<exp>.json per experiment (harness config, \
           per-run throughput / write-amp / p50-p95-p99 latency, per-phase metrics \
           snapshots) into $(docv) (default ./bench_artifacts; use --json=DIR for an \
           explicit directory).")

let names_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT" ~doc:"Experiments to run (default: all).")

let cmd =
  let doc = "Regenerate the EvenDB paper's tables and figures" in
  Cmd.v (Cmd.info "evendb-bench" ~doc)
    Term.(
      const run_selected $ scale_arg $ threads_arg $ ops_arg $ disk_arg $ fault_arg $ attr_arg
      $ json_arg $ names_arg)

let () = exit (Cmd.eval cmd)
