(* Ablation study (beyond the paper's figures): disable each of
   EvenDB's design components in turn and measure the impact on the
   mixed workload A and the scan-heavy production workload — isolating
   what the munk cache, row cache, partitioned bloom filter and
   in-memory compaction each contribute (§2.2's design-choice list).

   Also reports the synchronous-persistence cost the paper mentions in
   §3.5 ("roughly an order-of-magnitude slower"). *)

open Evendb_core
open Evendb_ycsb

let variants (h : Harness.t) =
  let base = Harness.evendb_config h in
  [
    ("full EvenDB", base);
    ( "no munk cache",
      (* Chunks are never cached wholesale: every read goes to the row
         cache or disk. *)
      { base with Config.munk_cache_capacity = 1 } );
    ("no row cache", { base with Config.row_cache_capacity_per_table = 1 });
    ( "unpartitioned bloom",
      (* One filter for the whole log: a hit rescans everything. *)
      { base with Config.bloom_split_factor = 1 } );
    ( "no in-memory compaction",
      (* Flush-happy: the with-munk log limit drops to the munk-less
         one, so compaction hits disk as often as for cold chunks. *)
      { base with Config.funk_log_limit_with_munk = base.Config.funk_log_limit_no_munk } );
  ]

let engine_of ?env cfg =
  let env = match env with Some e -> e | None -> Evendb_storage.Env.memory () in
  let db = Db.open_ ~config:cfg env in
  {
    Engine.name = "EvenDB";
    put = Db.put db;
    get = Db.get db;
    delete = Db.delete db;
    scan = (fun ~low ~high ~limit -> Db.scan db ~limit ~low ~high ());
    maintain = (fun () -> Db.maintain db);
    close = (fun () -> Db.close db);
    env;
    logical_bytes = (fun () -> Db.logical_bytes_written db);
    metrics = (fun () -> Db.metrics_dump db `Json);
    attr = (fun () -> Db.attr db);
    absorbed_failures = (fun () -> 0);
  }

let run_a (h : Harness.t) cfg ~items =
  let e = engine_of cfg in
  Fun.protect
    ~finally:(fun () ->
      Harness.dump_metrics e ~phase:"final";
      e.Engine.close ())
    (fun () ->
      (* Zipf-simple: the distribution where the row cache earns its
         keep (§5.3: "the row cache becomes instrumental as spatial
         locality drops"). *)
      let shared =
        Workload.create_shared ~value_bytes:h.value_bytes (Workload.Zipf_simple 0.99) ~items
          ~seed:41
      in
      Runner.load e shared;
      let r = Runner.run e shared Runner.workload_a ~ops:h.ops ~threads:h.threads in
      (r.Runner.kops, Engine.write_amplification e))

let run_scans (h : Harness.t) cfg ~events =
  let e = engine_of cfg in
  Fun.protect
    ~finally:(fun () ->
      Harness.dump_metrics e ~phase:"final";
      e.Engine.close ())
    (fun () ->
      let trace = Trace.create ~apps:(2000 * h.scale) ~value_bytes:h.value_bytes ~seed:41 () in
      for _ = 1 to events do
        let k, v = Trace.next_event trace in
        e.Engine.put k v
      done;
      let ops = max 200 (h.ops / 20) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to ops do
        let app = Trace.sample_app trace in
        let low, high = Trace.recent_range trace app ~events:50 in
        ignore (e.Engine.scan ~low ~high ~limit:200)
      done;
      float_of_int ops /. (Unix.gettimeofday () -. t0) /. 1000.0)

let run (h : Harness.t) =
  Report.heading "Ablation: contribution of each design component";
  let bytes, _ = List.nth (Harness.dataset_sizes h) 1 in
  let items = Harness.items_for h bytes in
  let events = items in
  Report.table
    ~header:[ "variant"; "A Kops"; "A write-amp"; "trace scans Kops" ]
    (List.map
       (fun (name, cfg) ->
         let a_kops, a_wamp = run_a h cfg ~items in
         let scan_kops = run_scans h cfg ~events in
         [ name; Report.kops a_kops; Report.ratio a_wamp; Report.kops scan_kops ])
       (variants h));
  Report.heading "Persistence mode: async vs sync puts (§3.5, on-disk)";
  let base = Harness.evendb_config h in
  Report.table
    ~header:[ "mode"; "ingest Kops" ]
    (List.map
       (fun (name, cfg) ->
         (* Real files: fsync cost is the whole point here. *)
         let e = engine_of ~env:(Harness.fresh_env { h with Harness.on_disk = true }) cfg in
         Fun.protect
           ~finally:(fun () ->
      Harness.dump_metrics e ~phase:"final";
      e.Engine.close ())
           (fun () ->
             let shared =
               Workload.create_shared ~value_bytes:h.value_bytes Workload.Uniform
                 ~items:(max 256 (items / 4)) ~seed:43
             in
             let w = Workload.thread shared ~id:0 in
             let n = max 200 (h.ops / 10) in
             let t0 = Unix.gettimeofday () in
             for _ = 1 to n do
               e.Engine.put (Workload.insert_key w) (Workload.make_value w)
             done;
             [ name; Report.kops (float_of_int n /. (Unix.gettimeofday () -. t0) /. 1000.0) ]))
       [
         ("async (default)", base);
         ("sync (fsync per put)", { base with Config.persistence = Config.Sync });
       ])
