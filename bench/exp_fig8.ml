(* Figure 8: 95th-percentile put and get latencies under the mixed
   workload A, for Zipf-composite and Zipf-simple keys. *)

open Evendb_util
open Evendb_ycsb

let run_one (h : Harness.t) which dist ~phase ~items ~ops =
  Harness.with_engine h which (fun e ->
      let shared = Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:17 in
      Runner.load e shared;
      let r = Runner.run e shared Runner.workload_a ~ops ~threads:h.threads in
      Harness.note_result ~phase e r;
      ( Histogram.percentile r.Runner.get_hist 95.0,
        Histogram.percentile r.Runner.put_hist 95.0 ))

let run (h : Harness.t) =
  Report.heading "Figure 8: 95% latency (ms) under mixed put-get workload A";
  List.iter
    (fun dist ->
      Printf.printf "\n-- %s --\n" (Workload.dist_name dist);
      Report.table
        ~header:[ "dataset"; "EvenDB get"; "EvenDB put"; "LSM get"; "LSM put" ]
        (List.map
           (fun (bytes, label) ->
             let items = Harness.items_for h bytes in
             let phase = Printf.sprintf "A/%s/%s" (Workload.dist_name dist) label in
             let ev_get, ev_put = run_one h `Evendb dist ~phase ~items ~ops:h.ops in
             let ro_get, ro_put = run_one h `Lsm dist ~phase ~items ~ops:h.ops in
             [
               label;
               Printf.sprintf "%.3f" (Report.ms_of_ns ev_get);
               Printf.sprintf "%.3f" (Report.ms_of_ns ev_put);
               Printf.sprintf "%.3f" (Report.ms_of_ns ro_get);
               Printf.sprintf "%.3f" (Report.ms_of_ns ro_put);
             ])
           (Harness.dataset_sizes h)))
    [ Workload.Zipf_composite 0.99; Workload.Zipf_simple 0.99 ]
