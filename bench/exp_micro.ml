(* Bechamel micro-benchmarks: one Test.make per table/figure family,
   exercising that experiment's core operation in isolation (the
   methodology companion to the macro harness). *)

open Bechamel
open Toolkit
open Evendb_ycsb

let mk_evendb (h : Harness.t) ~items dist =
  let e = Harness.make_engine h `Evendb in
  let shared = Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:77 in
  Runner.load e shared;
  (e, Workload.thread shared ~id:1)

let tests (h : Harness.t) =
  let items = Harness.items_for h (List.nth (Harness.dataset_sizes h) 0 |> fst) in
  let dist = Workload.Zipf_composite 0.99 in
  (* Figures 3/6a/7: the put path. *)
  let put_engine, put_w = mk_evendb h ~items dist in
  let put_test =
    Test.make ~name:"fig3/fig6/fig7: evendb put"
      (Staged.stage (fun () ->
           put_engine.Engine.put (Workload.sample_key put_w) (Workload.make_value put_w)))
  in
  (* Figures 6c/8/9/10: the get path. *)
  let get_engine, get_w = mk_evendb h ~items dist in
  let get_test =
    Test.make ~name:"fig6c/fig8/fig9/fig10: evendb get"
      (Staged.stage (fun () -> ignore (get_engine.Engine.get (Workload.sample_key get_w))))
  in
  (* Figures 5/6g-i: the scan path. *)
  let scan_engine, scan_w = mk_evendb h ~items dist in
  let scan_test =
    Test.make ~name:"fig5/fig6e: evendb scan10"
      (Staged.stage (fun () ->
           ignore
             (scan_engine.Engine.scan ~low:(Workload.scan_start scan_w)
                ~high:Workload.key_space_high ~limit:10)))
  in
  (* Table 4: baseline put for the ratio's denominator. *)
  let flsm_engine = Harness.make_engine h `Flsm in
  let flsm_w =
    Workload.thread (Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:78) ~id:2
  in
  let flsm_test =
    Test.make ~name:"table4: flsm put"
      (Staged.stage (fun () ->
           flsm_engine.Engine.put (Workload.sample_key flsm_w) (Workload.make_value flsm_w)))
  in
  (* Figure 12b: partitioned bloom filter query. *)
  let bloom =
    let b =
      Evendb_bloom.Partitioned_bloom.create ~segment_bytes:8192 ~expected_keys_per_segment:256 ()
    in
    for i = 0 to 4095 do
      Evendb_bloom.Partitioned_bloom.add b ~key:(Printf.sprintf "key%06d" i) ~log_offset:(i * 64)
    done;
    b
  in
  let bloom_test =
    Test.make ~name:"fig12b: partitioned bloom query"
      (Staged.stage (fun () ->
           ignore (Evendb_bloom.Partitioned_bloom.segments_maybe_containing bloom "key001234")))
  in
  (* Table 2: log append (the ingestion write path's disk cost). *)
  let env = Evendb_storage.Env.memory () in
  let log = Evendb_log.Log_file.Writer.create env "micro.log" in
  let log_test =
    Test.make ~name:"table2: funk-log append"
      (Staged.stage (fun () ->
           ignore
             (Evendb_log.Log_file.Writer.append log
                { Evendb_util.Kv_iter.key = "key"; value = Some (String.make 128 'x');
                  version = 1; counter = 0 })))
  in
  ( [ put_test; get_test; scan_test; flsm_test; bloom_test; log_test ],
    fun () ->
      put_engine.Engine.close ();
      get_engine.Engine.close ();
      scan_engine.Engine.close ();
      flsm_engine.Engine.close () )

(* Whole-engine companion to the single-op microbenchmarks: one short
   YCSB-A run per engine, so the micro artifact carries comparable
   throughput / write-amp / latency percentiles for all three. *)
let engine_baseline (h : Harness.t) =
  Report.heading "Micro engine baseline: YCSB-A, one short run per engine";
  let items = Harness.items_for h (List.nth (Harness.dataset_sizes h) 0 |> fst) in
  let ops = max 500 (h.ops / 2) in
  List.iter
    (fun which ->
      Harness.with_engine h which (fun e ->
          let shared =
            Workload.create_shared ~value_bytes:h.value_bytes (Workload.Zipf_composite 0.99)
              ~items ~seed:99
          in
          Runner.load e shared;
          let r = Runner.run e shared Runner.workload_a ~ops ~threads:h.threads in
          Harness.note_result ~phase:"ycsb_a" e r;
          let p99_us hist =
            float_of_int (Evendb_util.Histogram.percentile hist 99.0) /. 1e3
          in
          Printf.printf "  %-8s %8.1f kops  write-amp %.2f  p99 put %8.1f us  p99 get %8.1f us\n"
            e.Engine.name r.Runner.kops
            (Engine.write_amplification e)
            (p99_us r.Runner.put_hist) (p99_us r.Runner.get_hist)))
    [ `Evendb; `Lsm; `Flsm ]

(* Sync-durability micro: 100% updates with fsync-per-put, slow
   threshold calibrated to the warmup's put p95 so the slow-op ring
   captures the tail — the canonical demonstration that fsync is the
   dominant p99 cause (DESIGN.md, attribution model). *)
let sync_durability (h : Harness.t) =
  Report.heading "Micro sync-durability: 100% put, fsync per op, attributed tail";
  (* Small working set and values: keep rebalance work rare so the
     run isolates the per-put durability cost rather than maintenance
     interference — fsync should be the dominant tail cause. *)
  let items = 512 in
  let config =
    { (Harness.evendb_config h) with Evendb_core.Config.persistence = Evendb_core.Config.Sync }
  in
  let e = Engine.evendb ~config (Harness.fresh_env h) in
  Fun.protect
    ~finally:(fun () ->
      Harness.dump_metrics e ~phase:"sync_final";
      e.Engine.close ())
    (fun () ->
      let shared =
        Workload.create_shared ~value_bytes:128 (Workload.Zipf_composite 0.99) ~items ~seed:101
      in
      Runner.load e shared;
      let ops = max 500 (h.ops / 2) in
      let warm = Runner.run e shared Runner.workload_p ~ops ~threads:1 in
      let p95 = Evendb_util.Histogram.percentile warm.Runner.put_hist 95.0 in
      (* Re-arm the ring at the measured p95 so "slow" means this
         workload's own tail, not the static config default. *)
      Evendb_obs.Attr.set_threshold_ns (e.Engine.attr ()) (max 1 p95);
      let r = Runner.run e shared Runner.workload_p ~ops ~threads:1 in
      Harness.note_result ~phase:"sync_put" e r;
      Harness.note_slow ~phase:"sync_put" e;
      let attr = e.Engine.attr () in
      let fsync_ns = Evendb_obs.Attr.cause_total_ns attr Evendb_obs.Attr.Fsync in
      let put_ns = Evendb_obs.Attr.op_total_ns attr Evendb_obs.Attr.Put in
      Printf.printf
        "  sync put: %8.1f kops  p95 %8.1f us  p99 %8.1f us  fsync share of put time %.1f%%\n"
        r.Runner.kops
        (float_of_int p95 /. 1e3)
        (float_of_int (Evendb_util.Histogram.percentile r.Runner.put_hist 99.0) /. 1e3)
        (if put_ns > 0 then 100.0 *. float_of_int fsync_ns /. float_of_int put_ns else 0.0))

let run (h : Harness.t) =
  engine_baseline h;
  sync_durability h;
  Report.heading "Micro-benchmarks (Bechamel): core op of each table/figure family";
  let tests, cleanup = tests h in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ])
      in
      let analyzed =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name ols ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "  %-45s %12.0f ns/op\n" name est
          | _ -> Printf.printf "  %-45s (no estimate)\n" name)
        analyzed)
    tests;
  cleanup ()
