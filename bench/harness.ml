(* Shared sizing and engine construction for all experiments.

   The paper runs 16 GB of RAM against 4–256 GB datasets; we preserve
   the ratios at laptop scale: a "RAM budget" for EvenDB's munk cache
   and dataset sizes from well-below to well-above it. [scale]
   multiplies both dataset sizes and op counts. *)

open Evendb_storage
open Evendb_ycsb

type t = {
  scale : int;
  threads : int;
  value_bytes : int;
  ram_budget : int; (* bytes of munk cache *)
  ops : int; (* measured ops per run *)
  on_disk : bool;
  fault_profile : (int * float) option;
      (* (seed, rate): inject storage faults into every environment the
         harness creates. Each engine gets a fresh plan from the same
         seed, so runs stay comparable; injected counts appear in the
         per-phase metrics dumps as "faults.injected". *)
  attr_on : bool;
      (* per-op cause attribution in every engine the harness builds;
         --attr off measures its own overhead (exp_attr_ab). *)
}

let mib = 1024 * 1024

let default =
  {
    scale = 1;
    threads = 2;
    value_bytes = 800;
    ram_budget = 4 * mib;
    ops = 20_000;
    on_disk = false;
    fault_profile = None;
    attr_on = true;
  }

let config_factor = 64 (* shrink paper thresholds 10MB chunks -> 160KB etc. *)

let chunk_bytes = Evendb_core.Config.(scaled ~factor:config_factor ()).max_chunk_bytes

let evendb_config h =
  let base = Evendb_core.Config.scaled ~factor:config_factor () in
  {
    base with
    munk_cache_capacity = max 2 (h.ram_budget / chunk_bytes);
    (* Paper: 8GB munks + 4GB row cache; keep the 2:1 ratio. *)
    row_cache_capacity_per_table =
      max 64 (h.ram_budget / 2 / 3 / (h.value_bytes + 14));
    attr_enabled = h.attr_on;
  }

let lsm_config h =
  { (Evendb_lsm.Lsm.Config.scaled ~factor:config_factor ()) with attr_enabled = h.attr_on }

let flsm_config h =
  { (Evendb_flsm.Flsm.Config.scaled ~factor:config_factor ()) with attr_enabled = h.attr_on }

let bench_dir = "/tmp/evendb_bench"

(* ------------------------------------------------------------------ *)
(* Metrics artifacts: every experiment run leaves per-phase JSON
   snapshots of the engine's Evendb_obs registry under
   <bench_dir>/metrics/<experiment>_<engine>_<phase>.json. *)

let current_experiment = ref "exp"

(* An experiment that overrides harness knobs internally (e.g. scaling
   forces the disk backend and its own value size) registers its
   effective config here so the artifact's "config" block describes
   the run that actually happened, not the CLI defaults. *)
let config_override : t option ref = ref None
let note_config_override h = config_override := Some h

let set_experiment name =
  current_experiment := name;
  config_override := None

let metrics_dir = bench_dir ^ "/metrics"

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> Char.lowercase_ascii c
      | _ -> '_')
    s

let mkdir_p dir =
  List.fold_left
    (fun acc part ->
      let acc = if acc = "" then part else acc ^ "/" ^ part in
      (try Unix.mkdir ("/" ^ acc) 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      acc)
    ""
    (String.split_on_char '/' dir |> List.filter (fun p -> p <> ""))

(* ------------------------------------------------------------------ *)
(* Machine-readable bench artifacts: with [--json], every experiment
   flushes one BENCH_<exp>.json carrying the harness config, each
   measured run's throughput / write-amp / latency percentiles, and the
   per-phase registry snapshots — the repo's perf-trajectory baseline
   format (schema documented in DESIGN.md). *)

let artifact_dir = ref None

type sample = {
  sm_engine : string;
  sm_phase : string;
  sm_result : Runner.result;
  sm_write_amp : float;
  sm_attr : string; (* Attr.to_json at sample time ("{}" if unavailable) *)
}

let art_samples : sample list ref = ref [] (* newest first *)
let art_metrics : (string * string * string) list ref = ref []
let art_slow : string list ref = ref [] (* JSONL fragments, newest first *)

let art_series : (string * string * string) list ref = ref []
(* (engine, phase, series-JSON array) — windowed telemetry samples an
   experiment captured from a live sampler (Db.serve_telemetry's
   /series endpoint or Sampler.to_json), newest first. *)

let artifacts_on () = !artifact_dir <> None

let note_result ?(phase = "run") (e : Engine.t) (r : Runner.result) =
  if artifacts_on () then
    art_samples :=
      {
        sm_engine = e.Engine.name;
        sm_phase = phase;
        sm_result = r;
        sm_write_amp = Engine.write_amplification e;
        sm_attr = (try Evendb_obs.Attr.to_json (e.Engine.attr ()) with _ -> "{}");
      }
      :: !art_samples

(* Attach a windowed-telemetry series (a JSON array of sampler
   samples) to the artifact under the "series" key. *)
let note_series ?(phase = "run") ~engine json =
  if artifacts_on () then art_series := (engine, phase, json) :: !art_series

(* Harvest the engine's slow-op ring into the experiment's
   SLOW_<exp>.jsonl, labelling every record with engine and phase. *)
let note_slow ?(phase = "run") (e : Engine.t) =
  if artifacts_on () then
    match
      Evendb_obs.Attr.slow_ops_jsonl
        ~tags:[ ("engine", e.Engine.name); ("phase", phase) ]
        (e.Engine.attr ())
    with
    | "" -> ()
    | jsonl -> art_slow := jsonl :: !art_slow
    | exception _ -> ()

let dump_metrics (e : Engine.t) ~phase =
  let metrics = try e.Engine.metrics () with _ -> "{}" in
  if artifacts_on () then art_metrics := (e.Engine.name, phase, metrics) :: !art_metrics;
  try
    ignore (mkdir_p metrics_dir);
    let file =
      Printf.sprintf "%s/%s_%s_%s.json" metrics_dir !current_experiment
        (sanitize e.Engine.name) (sanitize phase)
    in
    let oc = open_out file in
    output_string oc metrics;
    output_char oc '\n';
    close_out oc
  with Sys_error _ | Unix.Unix_error _ -> ()

let fresh_env h =
  let faults = Option.map (fun (seed, rate) -> Fault.plan ~seed ~rate ()) h.fault_profile in
  if h.on_disk then begin
    let dir =
      Printf.sprintf "%s/%d_%d" bench_dir (Unix.getpid ()) (int_of_float (Unix.gettimeofday () *. 1e6))
    in
    Env.disk ?faults dir
  end
  else Env.memory ?faults ()

let make_engine h which =
  let env = fresh_env h in
  let e =
    match which with
    | `Evendb -> Engine.evendb ~config:(evendb_config h) env
    | `Lsm -> Engine.lsm ~config:(lsm_config h) env
    | `Flsm -> Engine.flsm ~config:(flsm_config h) env
  in
  if h.fault_profile = None then e else Engine.fault_tolerant e

(* Dataset sizes relative to the RAM budget, mirroring the paper's
   4GB..256GB against 16GB RAM: below / at / 4x above. *)
let dataset_sizes h =
  [ (h.ram_budget / 4, "small(1/4 RAM)"); (h.ram_budget, "medium(=RAM)"); (4 * h.ram_budget, "large(4x RAM)") ]

let items_for h bytes = max 256 (bytes / (h.value_bytes + 14) * h.scale)

let with_engine h which f =
  let e = make_engine h which in
  Fun.protect
    ~finally:(fun () ->
      dump_metrics e ~phase:"final";
      e.Engine.close ())
    (fun () -> f e)

(* ------------------------------------------------------------------ *)
(* Artifact rendering *)

let set_artifact_dir dir =
  (* mkdir_p builds from the root, so anchor relative paths first. *)
  let dir = if Filename.is_relative dir then Filename.concat (Unix.getcwd ()) dir else dir in
  ignore (mkdir_p dir);
  artifact_dir := Some dir

let art_jstr s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let art_percentiles h =
  match Evendb_util.Histogram.percentiles h [ 50.0; 95.0; 99.0 ] with
  | [ p50; p95; p99 ] -> (p50, p95, p99)
  | _ -> (0, 0, 0)

let flush_artifact (h : t) =
  match !artifact_dir with
  | None -> ()
  | Some dir ->
    let h = Option.value ~default:h !config_override in
    let buf = Buffer.create 8192 in
    let bpf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    bpf "{\n";
    bpf "  \"schema_version\": 3,\n";
    bpf "  \"experiment\": %s,\n" (art_jstr !current_experiment);
    bpf
      "  \"config\": {\"scale\": %d, \"threads\": %d, \"value_bytes\": %d, \"ram_budget\": \
       %d, \"ops\": %d, \"on_disk\": %b, \"attr\": %b, \"fault_profile\": %s},\n"
      h.scale h.threads h.value_bytes h.ram_budget h.ops h.on_disk h.attr_on
      (match h.fault_profile with
      | None -> "null"
      | Some (seed, rate) -> Printf.sprintf "{\"seed\": %d, \"rate\": %.6f}" seed rate);
    bpf "  \"results\": [";
    List.iteri
      (fun i s ->
        if i > 0 then bpf ",";
        let r = s.sm_result in
        let merged = Evendb_util.Histogram.create () in
        List.iter
          (fun src -> Evendb_util.Histogram.merge_into ~src ~dst:merged)
          [ r.Runner.put_hist; r.Runner.get_hist; r.Runner.scan_hist ];
        let p50, p95, p99 = art_percentiles merged in
        bpf
          "\n    {\"engine\": %s, \"phase\": %s, \"ops\": %d, \"seconds\": %.6f, \
           \"throughput_kops\": %.3f, \"failed_ops\": %d, \"write_amp\": %.4f, \"p50_ns\": \
           %d, \"p95_ns\": %d, \"p99_ns\": %d, \"min_ns\": %d, \"max_ns\": %d, \"latency\": {"
          (art_jstr s.sm_engine) (art_jstr s.sm_phase) r.Runner.ops r.Runner.seconds
          r.Runner.kops r.Runner.failed_ops s.sm_write_amp p50 p95 p99
          (Evendb_util.Histogram.min_value merged)
          (Evendb_util.Histogram.max_value merged);
        List.iteri
          (fun j (op, hist) ->
            if j > 0 then bpf ", ";
            let p50, p95, p99 = art_percentiles hist in
            bpf
              "\"%s\": {\"count\": %d, \"p50_ns\": %d, \"p95_ns\": %d, \"p99_ns\": %d, \
               \"max_ns\": %d}"
              op
              (Evendb_util.Histogram.count hist)
              p50 p95 p99
              (Evendb_util.Histogram.max_value hist))
          [ ("put", r.Runner.put_hist); ("get", r.Runner.get_hist); ("scan", r.Runner.scan_hist) ];
        bpf "}, \"attr\": %s}" s.sm_attr)
      (List.rev !art_samples);
    bpf "\n  ],\n  \"phase_metrics\": [";
    List.iteri
      (fun i (engine, phase, metrics) ->
        if i > 0 then bpf ",";
        bpf "\n    {\"engine\": %s, \"phase\": %s, \"metrics\": %s}" (art_jstr engine)
          (art_jstr phase) metrics)
      (List.rev !art_metrics);
    bpf "\n  ],\n  \"series\": [";
    List.iteri
      (fun i (engine, phase, series) ->
        if i > 0 then bpf ",";
        bpf "\n    {\"engine\": %s, \"phase\": %s, \"samples\": %s}" (art_jstr engine)
          (art_jstr phase) series)
      (List.rev !art_series);
    bpf "\n  ]\n}\n";
    let slow = String.concat "" (List.rev !art_slow) in
    art_samples := [];
    art_metrics := [];
    art_slow := [];
    art_series := [];
    try
      ignore (mkdir_p dir);
      let file = Printf.sprintf "%s/BENCH_%s.json" dir (sanitize !current_experiment) in
      let oc = open_out file in
      Buffer.output_buffer oc buf;
      close_out oc;
      Printf.printf "[artifact] wrote %s\n" file;
      (* Always write the slow-op log (possibly empty) so CI can upload
         it unconditionally. *)
      let slow_file = Printf.sprintf "%s/SLOW_%s.jsonl" dir (sanitize !current_experiment) in
      let oc = open_out slow_file in
      output_string oc slow;
      close_out oc;
      Printf.printf "[artifact] wrote %s\n" slow_file
    with Sys_error _ | Unix.Unix_error _ -> ()
