(* Shared sizing and engine construction for all experiments.

   The paper runs 16 GB of RAM against 4–256 GB datasets; we preserve
   the ratios at laptop scale: a "RAM budget" for EvenDB's munk cache
   and dataset sizes from well-below to well-above it. [scale]
   multiplies both dataset sizes and op counts. *)

open Evendb_storage
open Evendb_ycsb

type t = {
  scale : int;
  threads : int;
  value_bytes : int;
  ram_budget : int; (* bytes of munk cache *)
  ops : int; (* measured ops per run *)
  on_disk : bool;
  fault_profile : (int * float) option;
      (* (seed, rate): inject storage faults into every environment the
         harness creates. Each engine gets a fresh plan from the same
         seed, so runs stay comparable; injected counts appear in the
         per-phase metrics dumps as "faults.injected". *)
}

let mib = 1024 * 1024

let default =
  {
    scale = 1;
    threads = 2;
    value_bytes = 800;
    ram_budget = 4 * mib;
    ops = 20_000;
    on_disk = false;
    fault_profile = None;
  }

let config_factor = 64 (* shrink paper thresholds 10MB chunks -> 160KB etc. *)

let chunk_bytes = Evendb_core.Config.(scaled ~factor:config_factor ()).max_chunk_bytes

let evendb_config h =
  let base = Evendb_core.Config.scaled ~factor:config_factor () in
  {
    base with
    munk_cache_capacity = max 2 (h.ram_budget / chunk_bytes);
    (* Paper: 8GB munks + 4GB row cache; keep the 2:1 ratio. *)
    row_cache_capacity_per_table =
      max 64 (h.ram_budget / 2 / 3 / (h.value_bytes + 14));
  }

let lsm_config _h = Evendb_lsm.Lsm.Config.scaled ~factor:config_factor ()
let flsm_config _h = Evendb_flsm.Flsm.Config.scaled ~factor:config_factor ()

let bench_dir = "/tmp/evendb_bench"

(* ------------------------------------------------------------------ *)
(* Metrics artifacts: every experiment run leaves per-phase JSON
   snapshots of the engine's Evendb_obs registry under
   <bench_dir>/metrics/<experiment>_<engine>_<phase>.json. *)

let current_experiment = ref "exp"
let set_experiment name = current_experiment := name

let metrics_dir = bench_dir ^ "/metrics"

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> Char.lowercase_ascii c
      | _ -> '_')
    s

let mkdir_p dir =
  List.fold_left
    (fun acc part ->
      let acc = if acc = "" then part else acc ^ "/" ^ part in
      (try Unix.mkdir ("/" ^ acc) 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      acc)
    ""
    (String.split_on_char '/' dir |> List.filter (fun p -> p <> ""))

let dump_metrics (e : Engine.t) ~phase =
  try
    ignore (mkdir_p metrics_dir);
    let file =
      Printf.sprintf "%s/%s_%s_%s.json" metrics_dir !current_experiment
        (sanitize e.Engine.name) (sanitize phase)
    in
    let oc = open_out file in
    output_string oc (e.Engine.metrics ());
    output_char oc '\n';
    close_out oc
  with Sys_error _ | Unix.Unix_error _ -> ()

let fresh_env h =
  let faults = Option.map (fun (seed, rate) -> Fault.plan ~seed ~rate ()) h.fault_profile in
  if h.on_disk then begin
    let dir =
      Printf.sprintf "%s/%d_%d" bench_dir (Unix.getpid ()) (int_of_float (Unix.gettimeofday () *. 1e6))
    in
    Env.disk ?faults dir
  end
  else Env.memory ?faults ()

let make_engine h which =
  let env = fresh_env h in
  let e =
    match which with
    | `Evendb -> Engine.evendb ~config:(evendb_config h) env
    | `Lsm -> Engine.lsm ~config:(lsm_config h) env
    | `Flsm -> Engine.flsm ~config:(flsm_config h) env
  in
  if h.fault_profile = None then e else Engine.fault_tolerant e

(* Dataset sizes relative to the RAM budget, mirroring the paper's
   4GB..256GB against 16GB RAM: below / at / 4x above. *)
let dataset_sizes h =
  [ (h.ram_budget / 4, "small(1/4 RAM)"); (h.ram_budget, "medium(=RAM)"); (4 * h.ram_budget, "large(4x RAM)") ]

let items_for h bytes = max 256 (bytes / (h.value_bytes + 14) * h.scale)

let with_engine h which f =
  let e = make_engine h which in
  Fun.protect
    ~finally:(fun () ->
      dump_metrics e ~phase:"final";
      e.Engine.close ())
    (fun () -> f e)
