(* Figure 12: sensitivity to EvenDB configuration parameters on the
   large dataset — (a) the munk-less funk-log size limit under
   workloads A and E100; (b) the bloom filter split factor under
   workload A. *)

open Evendb_core
open Evendb_ycsb

let run_one (h : Harness.t) cfg dist ~items ~mix ~ops =
  let env = Evendb_storage.Env.memory () in
  let db = Db.open_ ~config:cfg env in
  let e =
    {
      Engine.name = "EvenDB";
      put = Db.put db;
      get = Db.get db;
      delete = Db.delete db;
      scan = (fun ~low ~high ~limit -> Db.scan db ~limit ~low ~high ());
      maintain = (fun () -> Db.maintain db);
      close = (fun () -> Db.close db);
      env;
      logical_bytes = (fun () -> Db.logical_bytes_written db);
      metrics = (fun () -> Db.metrics_dump db `Json);
      attr = (fun () -> Db.attr db);
      absorbed_failures = (fun () -> 0);
    }
  in
  Fun.protect
    ~finally:(fun () ->
      Harness.dump_metrics e ~phase:"final";
      e.Engine.close ())
    (fun () ->
      let shared = Workload.create_shared ~value_bytes:h.value_bytes dist ~items ~seed:29 in
      Runner.load e shared;
      let r = Runner.run e shared mix ~ops ~threads:h.threads in
      r.Runner.kops)

let run (h : Harness.t) =
  let bytes, _ = List.nth (Harness.dataset_sizes h) 2 in
  let items = Harness.items_for h bytes in
  let base = Harness.evendb_config h in
  Report.heading "Figure 12a: throughput vs funk-log size limit (workloads A, E100)";
  (* Paper sweeps 128KB..4MB around the 2MB default; we sweep the same
     ratios around the scaled default. *)
  let default_limit = base.Config.funk_log_limit_no_munk in
  let limits = List.map (fun r -> default_limit * r / 16) [ 1; 2; 4; 8; 16; 32 ] in
  Report.table
    ~header:
      [ "log limit (KiB)"; "A composite"; "A simple"; "E100 composite"; "E100 simple" ]
    (List.map
       (fun limit ->
         let cfg = { base with Config.funk_log_limit_no_munk = max 1024 limit } in
         let cell mix ops dist = run_one h cfg dist ~items ~mix ~ops in
         [
           Printf.sprintf "%d" (limit / 1024);
           Report.kops (cell Runner.workload_a h.Harness.ops (Workload.Zipf_composite 0.99));
           Report.kops (cell Runner.workload_a h.Harness.ops (Workload.Zipf_simple 0.99));
           Report.kops
             (cell (Runner.workload_e 100) (max 200 (h.Harness.ops / 10))
                (Workload.Zipf_composite 0.99));
           Report.kops
             (cell (Runner.workload_e 100) (max 200 (h.Harness.ops / 10))
                (Workload.Zipf_simple 0.99));
         ])
       limits);
  Report.heading "Figure 12b: throughput vs bloom filter split factor (workload A)";
  Report.table
    ~header:[ "split factor"; "Zipf-composite"; "Zipf-simple" ]
    (List.map
       (fun factor ->
         let cfg = { base with Config.bloom_split_factor = factor } in
         [
           string_of_int factor;
           Report.kops
             (run_one h cfg (Workload.Zipf_composite 0.99) ~items ~mix:Runner.workload_a
                ~ops:h.Harness.ops);
           Report.kops
             (run_one h cfg (Workload.Zipf_simple 0.99) ~items ~mix:Runner.workload_a
                ~ops:h.Harness.ops);
         ])
       [ 1; 2; 4; 8; 16 ])
