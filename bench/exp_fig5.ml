(* Figure 5: scan-dominated analytics (95% range scans / 5% puts) over
   ingested production data, per dataset size, with throughput
   dynamics. Every query scans the recent history of one app sampled
   from the popularity distribution (popular apps queried more). *)

open Evendb_ycsb

let run_one (h : Harness.t) which ~events ~ops =
  Harness.with_engine h which (fun e ->
      let trace = Trace.create ~apps:(2000 * h.scale) ~value_bytes:h.value_bytes ~seed:7 () in
      (* Ingest phase (not measured). *)
      for _ = 1 to events do
        let k, v = Trace.next_event trace in
        e.Engine.put k v
      done;
      (* Measured analytics phase: 95% scans of recent per-app history,
         5% puts of new events. *)
      let rng = Evendb_util.Rng.create 31337 in
      let t0 = Unix.gettimeofday () in
      let window = ref t0 and window_count = ref 0 in
      let dynamics = ref [] in
      for _ = 1 to ops do
        (if Evendb_util.Rng.int rng 100 < 5 then begin
           let k, v = Trace.next_event trace in
           e.Engine.put k v
         end
         else begin
           let app = Trace.sample_app trace in
           let low, high = Trace.recent_range trace app ~events:50 in
           ignore (e.Engine.scan ~low ~high ~limit:200)
         end);
        incr window_count;
        let now = Unix.gettimeofday () in
        if now -. !window >= 0.5 then begin
          dynamics :=
            (now -. t0, float_of_int !window_count /. (now -. !window) /. 1000.0) :: !dynamics;
          window := now;
          window_count := 0
        end
      done;
      let wall = Unix.gettimeofday () -. t0 in
      (float_of_int ops /. wall /. 1000.0, List.rev !dynamics))

let run (h : Harness.t) =
  Report.heading "Figure 5: scan-dominated workload (95% scan / 5% put), production data";
  let ops = max 200 (h.ops / 20) in
  let rows =
    List.map
      (fun (bytes, label) ->
        let events = Harness.items_for h bytes in
        let ev_kops, ev_dyn = run_one h `Evendb ~events ~ops in
        let ro_kops, ro_dyn = run_one h `Lsm ~events ~ops in
        (label, ev_kops, ro_kops, ev_dyn, ro_dyn))
      (Harness.dataset_sizes h)
  in
  Report.table
    ~header:[ "dataset"; "EvenDB Kops"; "LSM Kops"; "speedup" ]
    (List.map
       (fun (label, ev, ro, _, _) ->
         [ label; Report.kops ev; Report.kops ro; Report.ratio (ev /. ro) ])
       rows);
  match List.rev rows with
  | (_, _, _, ev_dyn, ro_dyn) :: _ ->
    Report.series ~title:"EvenDB dynamics (time s, Kops), largest dataset" ev_dyn;
    Report.series ~title:"LSM dynamics (time s, Kops), largest dataset" ro_dyn
  | [] -> ()
