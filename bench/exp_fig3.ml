(* Figure 3 (a,b,c), Table 2 and Figure 4: ingestion of the production
   trace at three dataset sizes, EvenDB vs the LSM baseline.

   3a: throughput per dataset size; 3b: throughput dynamics (largest
   size); 3c: write amplification; Table 2: duration / read IO / write
   IO; Figure 4: space consumption during ingestion (with EvenDB's log
   share). *)

open Evendb_storage
open Evendb_ycsb

type ingest_result = {
  kops : float;
  wall : float;
  wamp : float;
  read_bytes : int;
  write_bytes : int;
  dynamics : (float * float) list; (* (time s, Kops) *)
  space : (float * int * int) list; (* (progress %, total bytes, log bytes) *)
}

let ingest (h : Harness.t) which ~events =
  Harness.with_engine h which (fun e ->
      let trace = Trace.create ~apps:(2000 * h.scale) ~value_bytes:h.value_bytes ~seed:7 () in
      let t0 = Unix.gettimeofday () in
      let window = ref t0 in
      let window_count = ref 0 in
      let dynamics = ref [] in
      let space = ref [] in
      for i = 1 to events do
        let k, v = Trace.next_event trace in
        e.Engine.put k v;
        incr window_count;
        let now = Unix.gettimeofday () in
        if now -. !window >= 0.5 then begin
          dynamics := (now -. t0, float_of_int !window_count /. (now -. !window) /. 1000.0) :: !dynamics;
          window := now;
          window_count := 0
        end;
        if i mod (max 1 (events / 20)) = 0 then
          space :=
            (float_of_int i /. float_of_int events *. 100.0, Engine.space_used e, -1) :: !space
      done;
      let wall = Unix.gettimeofday () -. t0 in
      let stats = Io_stats.snapshot (Env.stats e.Engine.env) in
      {
        kops = float_of_int events /. wall /. 1000.0;
        wall;
        wamp = Engine.write_amplification e;
        read_bytes = stats.Io_stats.bytes_read;
        write_bytes = stats.Io_stats.bytes_written;
        dynamics = List.rev !dynamics;
        space = List.rev !space;
      })

(* EvenDB variant that also samples funk-log bytes for Figure 4. *)
let ingest_evendb_with_logs (h : Harness.t) ~events =
  let env = Env.memory () in
  let db = Evendb_core.Db.open_ ~config:(Harness.evendb_config h) env in
  let trace = Trace.create ~apps:(2000 * h.scale) ~value_bytes:h.value_bytes ~seed:7 () in
  let space = ref [] in
  for i = 1 to events do
    let k, v = Trace.next_event trace in
    Evendb_core.Db.put db k v;
    if i mod (max 1 (events / 20)) = 0 then
      space :=
        ( float_of_int i /. float_of_int events *. 100.0,
          Env.space_used env,
          Evendb_core.Db.log_space db )
        :: !space
  done;
  Evendb_core.Db.close db;
  List.rev !space

let run (h : Harness.t) =
  let sizes = Harness.dataset_sizes h in
  let results =
    List.map
      (fun (bytes, label) ->
        let events = Harness.items_for h bytes in
        let ev = ingest h `Evendb ~events in
        let ro = ingest h `Lsm ~events in
        (label, bytes, events, ev, ro))
      sizes
  in
  Report.heading "Figure 3a: ingestion throughput (Kops), production trace";
  Report.table
    ~header:[ "dataset"; "events"; "EvenDB"; "LSM(RocksDB-like)"; "speedup" ]
    (List.map
       (fun (label, _, events, ev, ro) ->
         [
           label;
           string_of_int events;
           Report.kops ev.kops;
           Report.kops ro.kops;
           Report.ratio (ev.kops /. ro.kops);
         ])
       results);
  Report.heading "Figure 3b: ingestion throughput dynamics (largest dataset)";
  (match List.rev results with
  | (_, _, _, ev, ro) :: _ ->
    Report.series ~title:"EvenDB (time s, Kops)" ev.dynamics;
    Report.series ~title:"LSM (time s, Kops)" ro.dynamics
  | [] -> ());
  Report.heading "Figure 3c: write amplification during ingestion";
  Report.table
    ~header:[ "dataset"; "EvenDB"; "LSM(RocksDB-like)" ]
    (List.map
       (fun (label, _, _, ev, ro) -> [ label; Report.ratio ev.wamp; Report.ratio ro.wamp ])
       results);
  Report.heading "Table 2: resource consumption, largest ingestion";
  (match List.rev results with
  | (_, _, _, ev, ro) :: _ ->
    Report.table
      ~header:[ "engine"; "duration(s)"; "read I/O (MiB)"; "write I/O (MiB)" ]
      [
        [ "EvenDB"; Printf.sprintf "%.1f" ev.wall; Report.mib ev.read_bytes; Report.mib ev.write_bytes ];
        [ "LSM"; Printf.sprintf "%.1f" ro.wall; Report.mib ro.read_bytes; Report.mib ro.write_bytes ];
      ]
  | [] -> ());
  Report.heading "Figure 4: space consumption during ingestion (largest dataset)";
  (match List.rev results with
  | (_, bytes, events, _, ro) :: _ ->
    let ev_space = ingest_evendb_with_logs h ~events in
    Printf.printf "raw data: %s MiB\n" (Report.mib bytes);
    Report.table
      ~header:[ "progress %"; "EvenDB total MiB"; "EvenDB logs MiB"; "LSM total MiB" ]
      (List.map2
         (fun (pct, ev_total, ev_logs) (_, lsm_total, _) ->
           [
             Printf.sprintf "%.0f" pct;
             Report.mib ev_total;
             Report.mib ev_logs;
             Report.mib lsm_total;
           ])
         ev_space ro.space)
  | [] -> ())
