(* Figure 1: distribution of mobile app events by app id (log-log).
   Regenerated from the synthetic heavy-tail trace; also reports the
   paper's headline statistics (top 1% / 0.1% coverage). *)

open Evendb_ycsb

let run (h : Harness.t) =
  Report.heading "Figure 1: app-event popularity distribution (rank vs probability)";
  let trace = Trace.create ~apps:(2000 * h.scale) ~seed:42 () in
  let samples = 200_000 * h.scale in
  let pop = Trace.popularity trace ~samples in
  (* Log-spaced ranks, like the paper's log-log axes. *)
  let log_points =
    List.filter
      (fun (rank, _) ->
        let l = log10 (float_of_int rank) in
        Float.abs (l -. Float.round (l *. 4.0) /. 4.0) < 1e-9 || rank <= 4)
      pop
  in
  Report.table
    ~header:[ "app rank"; "probability density" ]
    (List.map (fun (r, p) -> [ string_of_int r; Printf.sprintf "%.3e" p ]) log_points);
  let total_apps = List.length pop in
  let coverage frac =
    let top = max 1 (int_of_float (float_of_int total_apps *. frac)) in
    List.fold_left (fun acc (rank, p) -> if rank <= top then acc +. p else acc) 0.0 pop
  in
  Printf.printf "top 1%%  of apps cover %.1f%% of events (paper: 94%%)\n" (coverage 0.01 *. 100.0);
  Printf.printf "top 0.1%% of apps cover %.1f%% of events (paper: 70%%)\n" (coverage 0.001 *. 100.0)
