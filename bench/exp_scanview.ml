(* Unified read path A/B (PR 8 acceptance cell): the shared block
   cache + per-funk sorted views, on vs. off, over the same
   spatially-local workload.

   Phases per arm:
     cold_scan  — every munk evicted first, so scans hit the funk
                  path where the sorted view replaces the per-scan
                  log fold + sort (and the block cache absorbs
                  repeated sstable block reads);
     warm_scan  — same mix again with caches warm;
     point_get  — workload C, guarding against a point-read
                  regression from the new machinery.

   Emits BENCH_scanview.json (schema v2) with engines
   "EvenDB view=on" / "EvenDB view=off"; CI gates on the cold-scan
   ratio and the point-get regression. *)

open Evendb_core
open Evendb_storage
open Evendb_ycsb

let arm_config h ~on =
  let base = Harness.evendb_config h in
  if on then base
  else { base with Config.sorted_view_enabled = false; block_cache_bytes = 0 }

(* 100% scans of 50 rows: measured phases must not re-warm munks or
   grow logs, so cold stays cold for the whole phase. *)
let scan_mix = [ (Runner.Scan 50, 100) ]

let evict_all db shared =
  List.iteri
    (fun i k -> if i mod 8 = 0 then ignore (Db.evict_munk db k))
    (Workload.load_keys shared)

type arm = {
  a_name : string;
  a_cold : Runner.result;
  a_warm : Runner.result;
  a_get : Runner.result;
  a_views_built : int;
  a_view_scans : int;
  a_view_fallbacks : int;
  a_cache_hits : int;
  a_cache_misses : int;
}

let run_arm (h : Harness.t) ~items ~on =
  let env = Harness.fresh_env h in
  let name = if on then "EvenDB view=on" else "EvenDB view=off" in
  let db = Db.open_ ~config:(arm_config h ~on) env in
  let e =
    {
      Engine.name;
      put = Db.put db;
      get = Db.get db;
      delete = Db.delete db;
      scan = (fun ~low ~high ~limit -> Db.scan db ~limit ~low ~high ());
      maintain = (fun () -> Db.maintain db);
      close = (fun () -> Db.close db);
      env;
      logical_bytes = (fun () -> Db.logical_bytes_written db);
      metrics = (fun () -> Db.metrics_dump db `Json);
      attr = (fun () -> Db.attr db);
      absorbed_failures = (fun () -> 0);
    }
  in
  let shared =
    Workload.create_shared ~value_bytes:h.value_bytes (Workload.Zipf_composite 0.99) ~items
      ~seed:47
  in
  Runner.load e shared;
  (* Season the funk logs so views span sstable + log, the shape cold
     chunks have in steady state. *)
  ignore (Runner.run e shared Runner.workload_a ~ops:(max 1000 (h.ops / 4)) ~threads:h.threads);
  e.Engine.maintain ();
  evict_all db shared;
  let scan_ops = max 500 (h.ops / 8) in
  let cold = Runner.run e shared scan_mix ~ops:scan_ops ~threads:h.threads in
  Harness.note_result ~phase:"cold_scan" e cold;
  Harness.dump_metrics e ~phase:"cold_scan";
  let warm = Runner.run e shared scan_mix ~ops:scan_ops ~threads:h.threads in
  Harness.note_result ~phase:"warm_scan" e warm;
  let gets = Runner.run e shared Runner.workload_c ~ops:h.ops ~threads:h.threads in
  Harness.note_result ~phase:"point_get" e gets;
  Harness.note_slow e;
  let c n = Evendb_obs.Obs.Counter.get (Evendb_obs.Obs.counter (Db.obs db) n) in
  let hits, misses =
    match Env.block_cache env with
    | Some bc -> (Evendb_cache.Block_cache.hits bc, Evendb_cache.Block_cache.misses bc)
    | None -> (0, 0)
  in
  let arm =
    {
      a_name = name;
      a_cold = cold;
      a_warm = warm;
      a_get = gets;
      a_views_built = c "sorted_view.builds";
      a_view_scans = c "sorted_view.scans";
      a_view_fallbacks = c "sorted_view.stale_fallbacks";
      a_cache_hits = hits;
      a_cache_misses = misses;
    }
  in
  Harness.dump_metrics e ~phase:"final";
  e.Engine.close ();
  arm

let run (h : Harness.t) =
  Report.heading "Scan-view A/B: shared block cache + sorted views vs. merge path";
  (* 4x the munk-cache budget: most chunks are munk-less, the regime
     the unified read path exists for. *)
  let items = Harness.items_for h (4 * h.ram_budget) in
  let on = run_arm h ~items ~on:true in
  let off = run_arm h ~items ~on:false in
  let row (a : arm) =
    [
      a.a_name;
      Printf.sprintf "%.1f" a.a_cold.Runner.kops;
      Printf.sprintf "%.1f" a.a_warm.Runner.kops;
      Printf.sprintf "%.1f" a.a_get.Runner.kops;
      string_of_int a.a_views_built;
      string_of_int a.a_view_scans;
      string_of_int a.a_view_fallbacks;
      (let total = a.a_cache_hits + a.a_cache_misses in
       if total = 0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. float a.a_cache_hits /. float total));
    ]
  in
  Report.table
    ~header:
      [ "engine"; "cold kops"; "warm kops"; "get kops"; "views"; "view scans"; "fallbacks"; "cache hit" ]
    [ row on; row off ];
  let ratio num den = if den > 0.0 then num /. den else 0.0 in
  Printf.printf "\ncold-scan speedup (view on/off): %.2fx\n"
    (ratio on.a_cold.Runner.kops off.a_cold.Runner.kops);
  Printf.printf "warm-scan speedup (view on/off): %.2fx\n"
    (ratio on.a_warm.Runner.kops off.a_warm.Runner.kops);
  Printf.printf "point-get ratio   (view on/off): %.2fx\n"
    (ratio on.a_get.Runner.kops off.a_get.Runner.kops)
